package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	linkpred "linkpred"
	"linkpred/internal/monitor"
)

func newTestServer(t *testing.T) (*httptest.Server, *linkpred.Concurrent) {
	t.Helper()
	pred, err := linkpred.NewConcurrent(linkpred.Config{K: 64, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(pred))
	t.Cleanup(ts.Close)
	return ts, pred
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d, want %d; body: %s", url, resp.StatusCode, wantStatus, body)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func ingest(t *testing.T, ts *httptest.Server, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /ingest: status %d, want %d; body: %s", resp.StatusCode, wantStatus, b)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// sharedFixture ingests a shared neighborhood {10..29} for vertices 1, 2.
func sharedFixture() string {
	var b strings.Builder
	for i := 10; i < 30; i++ {
		fmt.Fprintf(&b, "1 %d\n2 %d\n", i, i)
	}
	return b.String()
}

func TestIngestAndPair(t *testing.T) {
	ts, pred := newTestServer(t)
	out := ingest(t, ts, sharedFixture(), http.StatusOK)
	if out["ingested"].(float64) != 40 {
		t.Errorf("ingested = %v, want 40", out["ingested"])
	}
	if pred.NumEdges() != 40 {
		t.Errorf("predictor has %d edges", pred.NumEdges())
	}
	pair := getJSON(t, ts.URL+"/pair?u=1&v=2", http.StatusOK)
	if pair["jaccard"].(float64) != 1 {
		t.Errorf("jaccard = %v, want 1", pair["jaccard"])
	}
	if cn := pair["common_neighbors"].(float64); cn < 10 || cn > 30 {
		t.Errorf("common_neighbors = %v, want ≈20", cn)
	}
	if aa := pair["adamic_adar"].(float64); aa <= 0 {
		t.Errorf("adamic_adar = %v, want > 0", aa)
	}
	if ra := pair["resource_allocation"].(float64); ra <= 0 {
		t.Errorf("resource_allocation = %v, want > 0", ra)
	}
}

func TestIngestMalformed(t *testing.T) {
	ts, _ := newTestServer(t)
	out := ingest(t, ts, "1 2\nbogus\n3 4\n", http.StatusBadRequest)
	if out["error"] == nil {
		t.Error("expected error message")
	}
	if out["ingested"].(float64) != 1 {
		t.Errorf("ingested before failure = %v, want 1", out["ingested"])
	}
}

func TestScoreEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	ingest(t, ts, sharedFixture(), http.StatusOK)
	for _, m := range []string{"jaccard", "common-neighbors", "adamic-adar", "resource-allocation"} {
		out := getJSON(t, ts.URL+"/score?u=1&v=2&measure="+m, http.StatusOK)
		if out["measure"].(string) != m {
			t.Errorf("measure echoed as %v", out["measure"])
		}
		if out["score"].(float64) <= 0 {
			t.Errorf("%s score = %v, want > 0", m, out["score"])
		}
	}
	// Default measure.
	out := getJSON(t, ts.URL+"/score?u=1&v=2", http.StatusOK)
	if out["measure"].(string) != "adamic-adar" {
		t.Errorf("default measure = %v", out["measure"])
	}
	getJSON(t, ts.URL+"/score?u=1&v=2&measure=zebra", http.StatusBadRequest)
	getJSON(t, ts.URL+"/score?u=x&v=2", http.StatusBadRequest)
	getJSON(t, ts.URL+"/score?u=1", http.StatusBadRequest)
}

func TestTopKEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// 1 overlaps with 2 (20 shared), with 3 (5 shared).
	var b strings.Builder
	for i := 10; i < 30; i++ {
		fmt.Fprintf(&b, "1 %d\n2 %d\n", i, i)
	}
	for i := 10; i < 15; i++ {
		fmt.Fprintf(&b, "3 %d\n", i)
	}
	ingest(t, ts, b.String(), http.StatusOK)
	out := getJSON(t, ts.URL+"/topk?u=1&candidates=2,3,999,1&measure=common-neighbors&k=2", http.StatusOK)
	cands := out["candidates"].([]any)
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2: %v", len(cands), cands)
	}
	first := cands[0].(map[string]any)
	second := cands[1].(map[string]any)
	if first["v"].(float64) != 2 || second["v"].(float64) != 3 {
		t.Errorf("ranking = %v, want [2 3]", cands)
	}
	if first["score"].(float64) <= second["score"].(float64) {
		t.Error("scores not descending")
	}
	getJSON(t, ts.URL+"/topk?u=1&measure=jaccard", http.StatusBadRequest)            // no candidates
	getJSON(t, ts.URL+"/topk?u=1&candidates=2&k=0", http.StatusBadRequest)           // bad k
	getJSON(t, ts.URL+"/topk?u=1&candidates=abc", http.StatusBadRequest)             // bad candidate
	getJSON(t, ts.URL+"/topk?u=1&candidates=2&measure=zebra", http.StatusBadRequest) // bad measure
	getJSON(t, ts.URL+"/topk?candidates=2", http.StatusBadRequest)                   // missing u
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	ingest(t, ts, "1 2\n3 4\n", http.StatusOK)
	out := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if out["vertices"].(float64) != 4 || out["edges"].(float64) != 2 {
		t.Errorf("stats = %v", out)
	}
	if out["memory_bytes"].(float64) <= 0 || out["k"].(float64) != 64 {
		t.Errorf("stats = %v", out)
	}
}

func TestMethodRouting(t *testing.T) {
	ts, _ := newTestServer(t)
	// GET on /ingest and POST on /stats must 404/405 under method routing.
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /ingest should not succeed")
	}
	resp, err = http.Post(ts.URL+"/stats", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("POST /stats should not succeed")
	}
}

func TestConcurrentClients(t *testing.T) {
	ts, _ := newTestServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			var b strings.Builder
			for i := 0; i < 200; i++ {
				fmt.Fprintf(&b, "%d %d\n", base+i, base+i+1)
			}
			resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(b.String()))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}(w * 1000)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Get(ts.URL + "/pair?u=1&v=2")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	out := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if out["edges"].(float64) != 800 {
		t.Errorf("edges after concurrent ingest = %v, want 800", out["edges"])
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	ts, pred := newTestServer(t)
	ingest(t, ts, sharedFixture(), http.StatusOK)
	wantJ := pred.Jaccard(1, 2)

	// Download checkpoint.
	resp, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(ckpt) == 0 {
		t.Fatalf("checkpoint status %d, %d bytes", resp.StatusCode, len(ckpt))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("Content-Type = %q", ct)
	}

	// Wipe the server state by restoring onto a *second* server.
	ts2, _ := newTestServer(t)
	resp, err = http.Post(ts2.URL+"/restore", "application/octet-stream", bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d: %v", resp.StatusCode, out)
	}
	if out["restored_edges"].(float64) != 40 {
		t.Errorf("restored_edges = %v, want 40", out["restored_edges"])
	}
	// The restored server must answer identically.
	pair := getJSON(t, ts2.URL+"/pair?u=1&v=2", http.StatusOK)
	if pair["jaccard"].(float64) != wantJ {
		t.Errorf("restored jaccard = %v, want %v", pair["jaccard"], wantJ)
	}
	// And keep ingesting.
	ingest(t, ts2, "100 101\n", http.StatusOK)
	stats := getJSON(t, ts2.URL+"/stats", http.StatusOK)
	if stats["edges"].(float64) != 41 {
		t.Errorf("post-restore edges = %v, want 41", stats["edges"])
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/restore", "application/octet-stream",
		strings.NewReader("definitely not a checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage restore status = %d, want 400", resp.StatusCode)
	}
}

func TestPairIncludesAllMeasures(t *testing.T) {
	ts, _ := newTestServer(t)
	ingest(t, ts, sharedFixture(), http.StatusOK)
	pair := getJSON(t, ts.URL+"/pair?u=1&v=2", http.StatusOK)
	for _, key := range []string{
		"jaccard", "common_neighbors", "adamic_adar",
		"resource_allocation", "preferential_attachment", "cosine",
	} {
		v, ok := pair[key]
		if !ok {
			t.Errorf("/pair missing %q", key)
			continue
		}
		if v.(float64) <= 0 {
			t.Errorf("/pair %s = %v, want > 0", key, v)
		}
	}
}

func TestScoreAllSixMeasures(t *testing.T) {
	ts, _ := newTestServer(t)
	ingest(t, ts, sharedFixture(), http.StatusOK)
	for _, m := range []string{
		"jaccard", "common-neighbors", "adamic-adar",
		"resource-allocation", "preferential-attachment", "cosine",
	} {
		out := getJSON(t, ts.URL+"/score?u=1&v=2&measure="+m, http.StatusOK)
		if out["score"].(float64) <= 0 {
			t.Errorf("%s score = %v, want > 0", m, out["score"])
		}
	}
}

func TestTopKMatchesLibraryRanking(t *testing.T) {
	ts, pred := newTestServer(t)
	var b strings.Builder
	for i := 10; i < 30; i++ {
		fmt.Fprintf(&b, "1 %d\n2 %d\n", i, i)
	}
	for i := 10; i < 15; i++ {
		fmt.Fprintf(&b, "3 %d\n", i)
	}
	ingest(t, ts, b.String(), http.StatusOK)
	want, err := pred.TopK(linkpred.CommonNeighbors, 1, []uint64{2, 3, 999}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := getJSON(t, ts.URL+"/topk?u=1&candidates=2,3,999&measure=common-neighbors&k=2", http.StatusOK)
	cands := out["candidates"].([]any)
	if len(cands) != len(want) {
		t.Fatalf("HTTP ranking has %d entries, library %d", len(cands), len(want))
	}
	for i, c := range cands {
		entry := c.(map[string]any)
		if uint64(entry["v"].(float64)) != want[i].V || entry["score"].(float64) != want[i].Score {
			t.Errorf("rank %d: HTTP %v, library %+v", i, entry, want[i])
		}
	}
	// Cosine over HTTP must rank too (previously "unknown measure").
	out = getJSON(t, ts.URL+"/topk?u=1&candidates=2,3&measure=cosine", http.StatusOK)
	if len(out["candidates"].([]any)) != 2 {
		t.Errorf("cosine topk = %v", out["candidates"])
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	ingest(t, ts, "1 2\n", http.StatusOK)
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["status"].(string) != "ok" {
		t.Errorf("healthz status = %v", out["status"])
	}
	if out["uptime_seconds"].(float64) < 0 || out["edges"].(float64) != 1 {
		t.Errorf("healthz = %v", out)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	ingest(t, ts, sharedFixture(), http.StatusOK)
	getJSON(t, ts.URL+"/pair?u=1&v=2", http.StatusOK)
	getJSON(t, ts.URL+"/pair?u=1&v=2", http.StatusOK)
	getJSON(t, ts.URL+"/score?u=1&v=2&measure=zebra", http.StatusBadRequest)

	out := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	requests := out["requests"].(map[string]any)
	pair := requests["pair"].(map[string]any)
	if pair["count"].(float64) != 2 {
		t.Errorf("pair count = %v, want 2", pair["count"])
	}
	score := requests["score"].(map[string]any)
	if score["errors"].(float64) != 1 {
		t.Errorf("score errors = %v, want 1", score["errors"])
	}
	if latency := pair["latency"].(map[string]any); latency["buckets"] == nil {
		t.Error("latency histogram missing")
	}
	if edges := out["ingest"].(map[string]any)["edges"].(float64); edges != 40 {
		t.Errorf("ingest.edges = %v, want 40", edges)
	}
	predGauges := out["predictor"].(map[string]any)
	if predGauges["vertices"].(float64) != 22 || predGauges["edges"].(float64) != 40 {
		t.Errorf("predictor gauges = %v", predGauges)
	}
	if predGauges["memory_bytes"].(float64) <= 0 {
		t.Error("memory gauge missing")
	}

	// expvar-compatible flat map.
	flat := getJSON(t, ts.URL+"/metrics?format=expvar", http.StatusOK)
	if flat["requests.pair.count"].(float64) != 3 { // +1 from the nested /metrics read? no — /metrics reads don't touch pair
		t.Logf("flat keys: %v", flat)
	}
	if _, ok := flat["predictor.vertices"]; !ok {
		t.Errorf("expvar format missing flattened keys: %v", flat)
	}
	if _, ok := flat["requests"]; ok {
		t.Error("expvar format should not contain nested maps at top level")
	}
}

func TestMetricsWithMonitor(t *testing.T) {
	pred, err := linkpred.NewConcurrent(linkpred.Config{K: 64, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := monitor.New(monitor.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithOptions(pred, Options{Monitor: mon}))
	t.Cleanup(ts.Close)
	ingest(t, ts, "1 2\n1 2\n3 4\n5 5\n", http.StatusOK) // one duplicate, one self-loop
	out := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	strm, ok := out["stream"].(map[string]any)
	if !ok {
		t.Fatalf("stream profile missing from /metrics: %v", out)
	}
	if strm["edges"].(float64) != 3 || strm["self_loops"].(float64) != 1 {
		t.Errorf("stream profile = %v", strm)
	}
	if strm["duplicate_rate"].(float64) <= 0 {
		t.Errorf("duplicate_rate = %v, want > 0", strm["duplicate_rate"])
	}
}

func TestBodyLimit(t *testing.T) {
	pred, err := linkpred.NewConcurrent(linkpred.Config{K: 64, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithOptions(pred, Options{MaxBodyBytes: 64}))
	t.Cleanup(ts.Close)

	// Under the cap: accepted.
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader("1 2\n3 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small ingest status = %d", resp.StatusCode)
	}

	// Over the cap: 413, with the partial-ingest count reported.
	var big strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&big, "%d %d\n", i, i+1)
	}
	resp, err = http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(big.String()))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized ingest status = %d, want 413 (%v)", resp.StatusCode, out)
	}

	// /restore over the cap: also 413.
	resp, err = http.Post(ts.URL+"/restore", "application/octet-stream", strings.NewReader(strings.Repeat("x", 200)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized restore status = %d, want 413", resp.StatusCode)
	}
}

func TestRestoreCountsInMetrics(t *testing.T) {
	ts, _ := newTestServer(t)
	ingest(t, ts, "1 2\n", http.StatusOK)
	resp, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	ckpt, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/restore", "application/octet-stream", bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	ck := out["checkpoints"].(map[string]any)
	if ck["saved"].(float64) != 1 || ck["restored"].(float64) != 1 {
		t.Errorf("checkpoint counters = %v", ck)
	}
}
