package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	linkpred "linkpred"
	"linkpred/internal/stream"
	"linkpred/internal/wal"
)

var errBinDisk = errors.New("disk full")

// postFrames POSTs raw bytes as application/x-lp-edges and decodes the
// JSON response.
func postFrames(t *testing.T, ts *httptest.Server, body []byte, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+"/ingest", wal.FrameContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /ingest (binary): status %d, want %d; body: %s", resp.StatusCode, wantStatus, b)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// fixtureEdges is sharedFixture as structured edges: vertices 1 and 2
// share neighborhood {10..29}.
func fixtureEdges() []stream.Edge {
	var edges []stream.Edge
	for i := uint64(10); i < 30; i++ {
		edges = append(edges, stream.Edge{U: 1, V: i}, stream.Edge{U: 2, V: i})
	}
	return edges
}

func encodeFrames(t *testing.T, kind wal.Kind, batches ...[]stream.Edge) []byte {
	t.Helper()
	var body []byte
	var err error
	for _, b := range batches {
		if body, err = wal.EncodeFrame(body, kind, b); err != nil {
			t.Fatal(err)
		}
	}
	return body
}

// TestBinaryIngest: frames ingest into the same state text ingest would
// reach, across multiple frames in one request.
func TestBinaryIngest(t *testing.T) {
	ts, pred := newTestServer(t)
	edges := fixtureEdges()
	body := encodeFrames(t, wal.KindEdge, edges[:25], edges[25:])
	out := postFrames(t, ts, body, http.StatusOK)
	if out["ingested"].(float64) != 40 {
		t.Errorf("ingested = %v, want 40", out["ingested"])
	}
	if pred.NumEdges() != 40 {
		t.Errorf("predictor has %d edges, want 40", pred.NumEdges())
	}
	pair := getJSON(t, ts.URL+"/pair?u=1&v=2", http.StatusOK)
	if pair["jaccard"].(float64) != 1 {
		t.Errorf("jaccard = %v, want 1", pair["jaccard"])
	}
}

// TestBinaryIngestMatchesText: the two wire formats must land in
// identical predictor state — same vertices, edges, and scores.
func TestBinaryIngestMatchesText(t *testing.T) {
	tsText, predText := newTestServer(t)
	tsBin, predBin := newTestServer(t)
	ingest(t, tsText, sharedFixture(), http.StatusOK)
	postFrames(t, tsBin, encodeFrames(t, wal.KindEdge, fixtureEdges()), http.StatusOK)
	if predText.NumEdges() != predBin.NumEdges() || predText.NumVertices() != predBin.NumVertices() {
		t.Fatalf("state diverges: %d/%d edges, %d/%d vertices",
			predText.NumEdges(), predBin.NumEdges(), predText.NumVertices(), predBin.NumVertices())
	}
	for _, m := range linkpred.AllMeasures {
		a, _ := predText.Score(m, 1, 2)
		b, _ := predBin.Score(m, 1, 2)
		if a != b {
			t.Errorf("%s: text %v != binary %v", m, a, b)
		}
	}
}

// TestBinaryIngestMalformed: the adversarial frame shapes the fuzz
// target covers must all surface as 400 with the prior frames' edges
// acknowledged — never a panic or a hung request.
func TestBinaryIngestMalformed(t *testing.T) {
	good := encodeFrames(t, wal.KindEdge, fixtureEdges()[:4])
	cases := map[string]struct {
		mutate func([]byte) []byte
		want   int
	}{
		"torn header":   {func(b []byte) []byte { return b[:7] }, http.StatusBadRequest},
		"torn payload":  {func(b []byte) []byte { return b[:len(b)-9] }, http.StatusBadRequest},
		"bad crc":       {func(b []byte) []byte { b[0] ^= 0xff; return b }, http.StatusBadRequest},
		"oversized len": {func(b []byte) []byte { b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0x7f; return b }, http.StatusBadRequest},
		"bad kind": {func(b []byte) []byte {
			b[16] = 9
			return refreshCRC(b)
		}, http.StatusBadRequest},
		"count mismatch": {func(b []byte) []byte {
			b[17], b[18], b[19], b[20] = 0xe8, 0x03, 0, 0 // count=1000
			return refreshCRC(b)
		}, http.StatusBadRequest},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			ts, pred := newTestServer(t)
			// One valid frame, then the mutated one: the valid prefix must
			// be acknowledged in the error body.
			prefix := encodeFrames(t, wal.KindEdge, fixtureEdges()[4:8])
			body := append(prefix, tc.mutate(append([]byte(nil), good...))...)
			out := postFrames(t, ts, body, tc.want)
			if out["error"] == nil {
				t.Error("error body missing")
			}
			if out["ingested"].(float64) != 4 {
				t.Errorf("ingested = %v, want 4", out["ingested"])
			}
			if pred.NumEdges() != 4 {
				t.Errorf("predictor has %d edges, want 4", pred.NumEdges())
			}
		})
	}
}

// refreshCRC re-seals a mutated frame — CRC32C over everything after
// the crc field, the frame layout — so the mutation under test is
// reached instead of masked by the checksum check.
func refreshCRC(b []byte) []byte {
	c := crc32.Checksum(b[4:], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(b[0:4], c)
	return b
}

// TestBinaryIngestKindMismatch: an arc frame sent to an undirected
// store (and vice versa) is a 400, not a silent reinterpretation.
func TestBinaryIngestKindMismatch(t *testing.T) {
	ts, _ := newTestServer(t) // undirected
	body := encodeFrames(t, wal.KindArc, fixtureEdges()[:4])
	out := postFrames(t, ts, body, http.StatusBadRequest)
	if out["error"] == nil {
		t.Error("error body missing")
	}

	dir, err := linkpred.NewEngine(linkpred.EngineSpec{
		Mode: linkpred.ModeConcurrentDirected, Config: linkpred.Config{K: 32, Seed: 1}, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsDir := httptest.NewServer(New(dir))
	defer tsDir.Close()
	out = postFrames(t, tsDir, encodeFrames(t, wal.KindEdge, fixtureEdges()[:4]), http.StatusBadRequest)
	if out["error"] == nil {
		t.Error("error body missing")
	}
	postFrames(t, tsDir, encodeFrames(t, wal.KindArc, fixtureEdges()[:4]), http.StatusOK)
}

// TestBinaryIngestThroughWAL: durable binary ingest appends the frame
// bytes to the log; recovery replays them into the same state.
func TestBinaryIngestThroughWAL(t *testing.T) {
	ts, pred, d, _ := newDurableServer(t)
	body := encodeFrames(t, wal.KindEdge, fixtureEdges()[:25], fixtureEdges()[25:])
	out := postFrames(t, ts, body, http.StatusOK)
	if out["ingested"].(float64) != 40 {
		t.Errorf("ingested = %v, want 40", out["ingested"])
	}
	if pred.NumEdges() != 40 {
		t.Errorf("predictor has %d edges, want 40", pred.NumEdges())
	}
	if got := d.WAL().LastSeq(); got != 40 {
		t.Errorf("wal last_seq = %d, want 40", got)
	}
	m := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	walStats := m["wal"].(map[string]any)
	if walStats["edges"].(float64) != 40 {
		t.Errorf("wal edges = %v, want 40", walStats["edges"])
	}
	if walStats["records"].(float64) != 2 {
		t.Errorf("wal records = %v, want 2 (one per frame)", walStats["records"])
	}
}

// TestBinaryIngestWALFailureIs503: log-before-apply holds on the frame
// path too.
func TestBinaryIngestWALFailureIs503(t *testing.T) {
	ts, pred, _, fs := newDurableServer(t)
	postFrames(t, ts, encodeFrames(t, wal.KindEdge, fixtureEdges()[:1]), http.StatusOK)
	fs.SetWriteError(errBinDisk)
	out := postFrames(t, ts, encodeFrames(t, wal.KindEdge, fixtureEdges()[1:3]), http.StatusServiceUnavailable)
	if out["error"] == nil {
		t.Error("503 body should carry the WAL error")
	}
	if pred.NumEdges() != 1 {
		t.Errorf("predictor has %d edges after failed append, want 1", pred.NumEdges())
	}
	fs.SetWriteError(nil)
	postFrames(t, ts, encodeFrames(t, wal.KindEdge, fixtureEdges()[1:3]), http.StatusOK)
	if pred.NumEdges() != 3 {
		t.Errorf("predictor has %d edges after recovery, want 3", pred.NumEdges())
	}
}
