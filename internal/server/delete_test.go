package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	linkpred "linkpred"
	"linkpred/internal/wal"
)

// newDynamicServer serves a deletion-capable engine.
func newDynamicServer(t *testing.T) (*httptest.Server, linkpred.Engine) {
	t.Helper()
	eng, err := linkpred.NewEngine(linkpred.EngineSpec{
		Mode: linkpred.ModeDynamic, Config: linkpred.Config{K: 64, Seed: 1}, RecoverDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts, eng
}

// sendDelete issues DELETE /ingest with the given body and content type
// and decodes the JSON response.
func sendDelete(t *testing.T, ts *httptest.Server, contentType string, body []byte, wantStatus int) map[string]any {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("DELETE /ingest: status %d, want %d; body: %s", resp.StatusCode, wantStatus, b)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDeleteTextEndpoint(t *testing.T) {
	ts, eng := newDynamicServer(t)
	ingest(t, ts, sharedFixture(), http.StatusOK)
	if eng.NumEdges() != 40 {
		t.Fatalf("fixture ingested %d edges, want 40", eng.NumEdges())
	}
	// Retract vertex 1's half of the fixture plus one edge that never
	// existed: 20 applied, 1 refused.
	var b strings.Builder
	for i := 10; i < 30; i++ {
		b.WriteString("1 ")
		b.WriteString(itoa(i))
		b.WriteString("\n")
	}
	b.WriteString("1 999\n")
	out := sendDelete(t, ts, "text/plain", []byte(b.String()), http.StatusOK)
	if out["deleted"].(float64) != 21 || out["applied"].(float64) != 20 {
		t.Fatalf("deleted/applied = %v/%v, want 21/20", out["deleted"], out["applied"])
	}
	if eng.NumEdges() != 20 {
		t.Errorf("engine has %d edges after deletes, want 20", eng.NumEdges())
	}
	// The applied count lands in /metrics, and the predictor gauges
	// expose the degraded-register gauge for this mode.
	m := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	ing := m["ingest"].(map[string]any)
	if ing["edges_deleted"].(float64) != 20 {
		t.Errorf("metrics edges_deleted = %v, want 20", ing["edges_deleted"])
	}
	pred := m["predictor"].(map[string]any)
	if _, ok := pred["degraded_registers"]; !ok {
		t.Error("predictor gauges missing degraded_registers on dynamic mode")
	}
	if pred["recovery_depth"].(float64) != 4 {
		t.Errorf("recovery_depth gauge = %v, want 4", pred["recovery_depth"])
	}
}

func itoa(i int) string {
	return string([]byte{byte('0' + i/10), byte('0' + i%10)})
}

func TestDeleteRequiresDynamicMode(t *testing.T) {
	ts, _ := newTestServer(t) // concurrent mode
	out := sendDelete(t, ts, "text/plain", []byte("1 2\n"), http.StatusBadRequest)
	if !strings.Contains(out["error"].(string), "cannot delete") {
		t.Errorf("error = %q, want a cannot-delete explanation", out["error"])
	}
}

func TestDeleteBinaryFrames(t *testing.T) {
	ts, eng := newDynamicServer(t)
	edges := fixtureEdges()
	postFrames(t, ts, encodeFrames(t, wal.KindEdge, edges), http.StatusOK)
	out := sendDelete(t, ts, wal.FrameContentType,
		encodeFrames(t, wal.KindDelete, edges[:10], edges[10:20]), http.StatusOK)
	if out["deleted"].(float64) != 20 || out["applied"].(float64) != 20 {
		t.Fatalf("deleted/applied = %v/%v, want 20/20", out["deleted"], out["applied"])
	}
	if eng.NumEdges() != 20 {
		t.Errorf("engine has %d edges, want 20", eng.NumEdges())
	}
	// An insert frame on the delete endpoint is a client bug: 400, and
	// the preceding delete frame was already applied and reported.
	mixed := encodeFrames(t, wal.KindDelete, edges[20:25])
	mixed = append(mixed, encodeFrames(t, wal.KindEdge, edges[25:30])...)
	out = sendDelete(t, ts, wal.FrameContentType, mixed, http.StatusBadRequest)
	if out["deleted"].(float64) != 5 {
		t.Errorf("deleted before the bad frame = %v, want 5", out["deleted"])
	}
}

// TestPostIngestMixedFrames: KindDelete frames interleaved in the POST
// /ingest stream route to the delete path on a dynamic engine and 400
// on engines without the capability.
func TestPostIngestMixedFrames(t *testing.T) {
	ts, eng := newDynamicServer(t)
	edges := fixtureEdges()
	body := encodeFrames(t, wal.KindEdge, edges[:20])
	body = append(body, encodeFrames(t, wal.KindDelete, edges[:5])...)
	body = append(body, encodeFrames(t, wal.KindEdge, edges[20:])...)
	out := postFrames(t, ts, body, http.StatusOK)
	if out["ingested"].(float64) != 40 {
		t.Errorf("ingested = %v, want 40", out["ingested"])
	}
	if out["deleted"].(float64) != 5 || out["applied"].(float64) != 5 {
		t.Errorf("deleted/applied = %v/%v, want 5/5", out["deleted"], out["applied"])
	}
	if eng.NumEdges() != 35 {
		t.Errorf("engine has %d edges, want 35", eng.NumEdges())
	}

	tsPlain, _ := newTestServer(t)
	out = postFrames(t, tsPlain, append(encodeFrames(t, wal.KindEdge, edges[:10]),
		encodeFrames(t, wal.KindDelete, edges[:2])...), http.StatusBadRequest)
	if !strings.Contains(out["error"].(string), "cannot delete") {
		t.Errorf("error = %q, want a cannot-delete explanation", out["error"])
	}
	if out["ingested"].(float64) != 10 {
		t.Errorf("insert frames before the delete frame = %v, want 10", out["ingested"])
	}
}

// newDynamicDurableServer is newDurableServer for the dynamic mode.
func newDynamicDurableServer(t *testing.T) (*httptest.Server, linkpred.Engine, *wal.Durable, *wal.FaultFS) {
	t.Helper()
	eng, err := linkpred.NewEngine(linkpred.EngineSpec{
		Mode: linkpred.ModeDynamic, Config: linkpred.Config{K: 64, Seed: 1}, RecoverDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := wal.NewFaultFS()
	w, err := wal.Open("/wal", wal.Options{FS: fs, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	d := wal.NewDurable(w, "/wal", wal.KindEdge, func(wr io.Writer) error {
		return eng.Save(wr)
	})
	ts := httptest.NewServer(NewWithOptions(eng, Options{Durability: d}))
	t.Cleanup(ts.Close)
	return ts, eng, d, fs
}

// TestDeleteCrashReplayByteIdentity: after a crash, recovery of a log
// holding mixed insert and delete records rebuilds a store
// byte-identical to the one that served the traffic.
func TestDeleteCrashReplayByteIdentity(t *testing.T) {
	ts, eng, _, fs := newDynamicDurableServer(t)
	edges := fixtureEdges()
	postFrames(t, ts, encodeFrames(t, wal.KindEdge, edges), http.StatusOK)
	sendDelete(t, ts, wal.FrameContentType, encodeFrames(t, wal.KindDelete, edges[:15]), http.StatusOK)
	sendDelete(t, ts, "text/plain", []byte("2 10\n2 11\n"), http.StatusOK)
	postFrames(t, ts, encodeFrames(t, wal.KindEdge, edges[:3]), http.StatusOK)

	var before bytes.Buffer
	if err := eng.Save(&before); err != nil {
		t.Fatal(err)
	}

	// Power loss with everything acknowledged on disk, then recovery
	// into a fresh engine.
	fs.Crash(fs.TotalWritten())
	fs.Restart()
	restored, err := linkpred.NewEngine(linkpred.EngineSpec{
		Mode: linkpred.ModeDynamic, Config: linkpred.Config{K: 64, Seed: 1}, RecoverDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = wal.Recover(fs, "/wal", func(r io.Reader) error {
		loaded, lerr := linkpred.LoadAnyEngine(r)
		if lerr != nil {
			return lerr
		}
		restored = loaded
		return nil
	}, func(rec wal.Record) error {
		b := make([]linkpred.Edge, len(rec.Edges))
		for i, e := range rec.Edges {
			b[i] = linkpred.Edge{U: e.U, V: e.V, T: e.T}
		}
		if rec.Kind == wal.KindDelete {
			del, ok := linkpred.DeleterOf(restored)
			if !ok {
				t.Fatal("recovered engine has no deleter")
			}
			del.DeleteEdges(b)
			return nil
		}
		restored.ObserveEdges(b)
		return nil
	})
	if err != nil {
		t.Fatalf("recover: %v\n%s", err, fs.Dump())
	}
	var after bytes.Buffer
	if err := restored.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("recovered store differs from the served store (%d vs %d bytes)\n%s",
			before.Len(), after.Len(), fs.Dump())
	}
}

// TestDeleteWALFailureIs503: a delete batch the log cannot append is
// not applied.
func TestDeleteWALFailureIs503(t *testing.T) {
	ts, eng, _, fs := newDynamicDurableServer(t)
	ingest(t, ts, sharedFixture(), http.StatusOK)
	fs.SetWriteError(errBinDisk)
	sendDelete(t, ts, "text/plain", []byte("1 10\n"), http.StatusServiceUnavailable)
	if eng.NumEdges() != 40 {
		t.Errorf("unlogged delete was applied: %d edges, want 40", eng.NumEdges())
	}
	fs.SetWriteError(nil)
	out := sendDelete(t, ts, "text/plain", []byte("1 10\n"), http.StatusOK)
	if out["applied"].(float64) != 1 {
		t.Errorf("applied = %v after WAL recovery, want 1", out["applied"])
	}
	if eng.NumEdges() != 39 {
		t.Errorf("engine has %d edges, want 39", eng.NumEdges())
	}
}
