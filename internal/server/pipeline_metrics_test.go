package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	linkpred "linkpred"
)

// TestPipelineMetrics: when the engine runs the shard-owner ingest
// pipeline, /metrics must carry its gauges under predictor.pipeline —
// nested JSON and flattened expvar — and drop them once the pipeline
// stops.
func TestPipelineMetrics(t *testing.T) {
	pred, err := linkpred.NewConcurrent(linkpred.Config{K: 64, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.StartIngestPipeline(2, 8) {
		t.Fatal("StartIngestPipeline refused forced workers")
	}
	ts := httptest.NewServer(New(pred))
	t.Cleanup(ts.Close)
	ingest(t, ts, sharedFixture(), http.StatusOK)

	out := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	pl, ok := out["predictor"].(map[string]any)["pipeline"].(map[string]any)
	if !ok {
		t.Fatalf("predictor.pipeline missing from /metrics: %v", out["predictor"])
	}
	if pl["workers"].(float64) != 2 {
		t.Errorf("pipeline.workers = %v, want 2", pl["workers"])
	}
	if pl["ring_capacity"].(float64) != 8 {
		t.Errorf("pipeline.ring_capacity = %v, want 8", pl["ring_capacity"])
	}
	if depths, ok := pl["ring_depths"].([]any); !ok || len(depths) != 2 {
		t.Errorf("pipeline.ring_depths = %v, want 2 entries", pl["ring_depths"])
	}
	if pl["outstanding"].(float64) != 0 {
		t.Errorf("pipeline.outstanding = %v after synchronous ingest", pl["outstanding"])
	}
	if pl["memory_bytes"].(float64) <= 0 {
		t.Error("pipeline.memory_bytes missing")
	}
	for _, key := range []string{"stalls", "owner_parks"} {
		if _, ok := pl[key]; !ok {
			t.Errorf("pipeline.%s missing", key)
		}
	}

	flat := getJSON(t, ts.URL+"/metrics?format=expvar", http.StatusOK)
	if _, ok := flat["predictor.pipeline.workers"]; !ok {
		t.Errorf("expvar format missing predictor.pipeline.workers: %v", flat)
	}

	pred.StopIngestPipeline()
	out = getJSON(t, ts.URL+"/metrics", http.StatusOK)
	if _, ok := out["predictor"].(map[string]any)["pipeline"]; ok {
		t.Error("predictor.pipeline still exported after StopIngestPipeline")
	}
}
