package candidates

import (
	"testing"

	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

// TestSpaceSavingExact: while the summary has room, every count is
// exact with zero error.
func TestSpaceSavingExact(t *testing.T) {
	s, err := NewSpaceSaving(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j <= i; j++ {
			s.Observe(uint64(i))
		}
	}
	for i := 0; i < 8; i++ {
		c, e, ok := s.Count(uint64(i))
		if !ok || c != int64(i+1) || e != 0 {
			t.Fatalf("item %d: count=%d err=%d ok=%v, want exact %d", i, c, e, ok, i+1)
		}
	}
	top := s.Top(3)
	if len(top) != 3 || top[0].ID != 7 || top[1].ID != 6 || top[2].ID != 5 {
		t.Fatalf("Top(3) = %+v, want items 7, 6, 5", top)
	}
}

// TestSpaceSavingEviction: replacement inherits the evicted minimum's
// count as its error bound and evicts the smallest id among ties.
func TestSpaceSavingEviction(t *testing.T) {
	s, _ := NewSpaceSaving(2)
	s.Observe(10)
	s.Observe(20)
	// Both at count 1 → tie; 30 must evict the smaller id, 10.
	s.Observe(30)
	if _, _, ok := s.Count(10); ok {
		t.Fatal("expected item 10 evicted (smallest id among minimum-count ties)")
	}
	c, e, ok := s.Count(30)
	if !ok || c != 2 || e != 1 {
		t.Fatalf("item 30: count=%d err=%d ok=%v, want count 2 err 1", c, e, ok)
	}
	if c, _, ok := s.Count(20); !ok || c != 1 {
		t.Fatal("item 20 should survive the eviction")
	}
}

// TestSpaceSavingDeterminism: equal observation sequences produce
// identical summaries, whatever map iteration order does internally.
func TestSpaceSavingDeterminism(t *testing.T) {
	build := func() []HeavyHitter {
		s, _ := NewSpaceSaving(16)
		r := rng.NewXoshiro256(99)
		for i := 0; i < 20000; i++ {
			s.Observe(r.Uint64() % 400)
		}
		return s.Top(0)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("summary sizes diverge: %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d diverges: %+v != %+v", i, a[i], b[i])
		}
	}
}

// TestSpaceSavingGuarantees: on a skewed stream, (1) counts never
// underestimate, (2) count − err never overestimates, (3) every item
// with true frequency > N/capacity is present, (4) per-entry error is
// bounded by N/capacity.
func TestSpaceSavingGuarantees(t *testing.T) {
	const cap = 64
	s, _ := NewSpaceSaving(cap)
	truth := make(map[uint64]int64)
	r := rng.NewXoshiro256(7)
	var n int64
	for i := 0; i < 100000; i++ {
		// Zipf-ish skew: low ids vastly more frequent.
		id := r.Uint64() % 1000
		id = id * id / 1000
		truth[id]++
		s.Observe(id)
		n++
	}
	threshold := n / cap
	for id, tc := range truth {
		c, e, ok := s.Count(id)
		if !ok {
			if tc > threshold {
				t.Fatalf("item %d with true count %d > N/cap %d missing from summary", id, tc, threshold)
			}
			continue
		}
		if c < tc {
			t.Fatalf("item %d: estimate %d underestimates true count %d", id, c, tc)
		}
		if c-e > tc {
			t.Fatalf("item %d: lower bound %d exceeds true count %d", id, c-e, tc)
		}
		if e > threshold {
			t.Fatalf("item %d: error %d exceeds N/cap %d", id, e, threshold)
		}
	}
	if s.Len() > s.Capacity() {
		t.Fatalf("summary holds %d entries, capacity %d", s.Len(), s.Capacity())
	}
}

// TestSpaceSavingBoundedMemory: memory is a function of capacity, not
// of the number of distinct items streamed through.
func TestSpaceSavingBoundedMemory(t *testing.T) {
	s, _ := NewSpaceSaving(32)
	for i := 0; i < 1000; i++ {
		s.Observe(uint64(i))
	}
	after1k := s.MemoryBytes()
	for i := 1000; i < 100000; i++ {
		s.Observe(uint64(i))
	}
	if got := s.MemoryBytes(); got != after1k {
		t.Fatalf("memory grew from %d to %d over a high-churn stream", after1k, got)
	}
	if s.Observed() != 100000 {
		t.Fatalf("Observed() = %d, want 100000", s.Observed())
	}
}

// TestSpaceSavingObserveN: the weighted form matches repeated Observe.
func TestSpaceSavingObserveN(t *testing.T) {
	a, _ := NewSpaceSaving(4)
	b, _ := NewSpaceSaving(4)
	seq := []uint64{1, 2, 1, 3, 1, 4, 5, 5}
	for _, id := range seq {
		a.Observe(id)
	}
	b.ObserveN(1, 3)
	b.ObserveN(2, 1)
	b.ObserveN(3, 1)
	b.ObserveN(4, 1)
	b.ObserveN(5, 2)
	ca, _, _ := a.Count(1)
	cb, _, _ := b.Count(1)
	if ca != cb {
		t.Fatalf("weighted and repeated counts diverge: %d != %d", ca, cb)
	}
	b.ObserveN(9, 0)
	b.ObserveN(9, -5)
	if _, _, ok := b.Count(9); ok {
		t.Fatal("non-positive ObserveN must be a no-op")
	}
}

// TestTrackerReserve: reserving is a pure sizing hint — state is
// preserved and queries are unchanged.
func TestTrackerReserve(t *testing.T) {
	tr, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr.Reserve(1024)
	tr.ProcessEdge(stream.Edge{U: 2, V: 3})
	tr.ProcessEdge(stream.Edge{U: 1, V: 2}) // path 1-2-3 → 3 is a candidate of 1
	before := tr.Candidates(1)
	tr.Reserve(4096)
	after := tr.Candidates(1)
	if len(before) == 0 || len(after) != len(before) || after[0] != before[0] {
		t.Fatalf("Reserve changed candidates: %v != %v", after, before)
	}
	tr.Reserve(0) // no-op
	if !tr.Knows(2) {
		t.Fatal("Reserve(0) dropped state")
	}
}
