// Package candidates provides bounded-memory streaming candidate
// generation for link prediction.
//
// The sketches answer "how similar are u and v?" in O(K), but a
// recommender also needs to know *which* v to ask about — classically
// the two-hop neighborhood of u, which a constant-space streaming system
// cannot enumerate (it has no adjacency lists). This package closes that
// gap with constant state per vertex:
//
//   - each vertex keeps a small ring of its most recent neighbors;
//   - when edge (u, v) arrives, v's recent neighbors are, by
//     construction, endpoints of fresh two-hop paths u–v–w, so each w is
//     counted into u's candidate pool (and symmetrically);
//   - the pool is a Metwally space-saving summary: it tracks the
//     approximately most frequent two-hop partners in O(poolSize) space,
//     which is exactly the candidate set neighborhood measures rank
//     highly (more shared neighbors ⇒ more u–·–w paths ⇒ more hits).
//
// Tracker state per vertex is O(recentSize + poolSize) regardless of
// degree or stream length, matching the sketches' space model.
package candidates

import (
	"fmt"
	"sort"

	"linkpred/internal/stream"
)

// Tracker maintains per-vertex candidate pools over a graph stream.
// It is not safe for concurrent use.
type Tracker struct {
	recentSize  int
	poolSize    int
	maxVertices int    // 0 = unbounded
	seq         uint64 // monotone vertex-insertion counter
	vertices    map[uint64]*vertexCand

	// fifo is the insertion-ordered eviction queue; entries before head
	// are drained. An id re-inserted after eviction appears twice, so
	// each entry carries the insertion seq and eviction skips entries
	// whose seq no longer matches the live state.
	fifo []fifoEntry
	head int
}

type fifoEntry struct {
	id  uint64
	seq uint64
}

type vertexCand struct {
	recent []uint64    // ring buffer of most recent neighbors
	pos    int         // next write position in recent
	seq    uint64      // insertion sequence, matches the fifo entry
	pool   []poolEntry // space-saving summary, unordered
}

type poolEntry struct {
	id   uint64
	hits int64
}

// New returns a Tracker keeping the recentSize most recent neighbors and
// a poolSize-entry candidate summary per vertex, with no bound on the
// number of tracked vertices. It returns an error if either is < 1.
func New(recentSize, poolSize int) (*Tracker, error) {
	return NewBounded(recentSize, poolSize, 0)
}

// NewBounded is New with a cap on tracked vertices: once maxVertices
// distinct vertices are live, tracking a new one evicts the
// oldest-inserted vertex (deterministic FIFO), so tracker memory is
// bounded by maxVertices whatever the stream's vertex churn.
// maxVertices <= 0 means unbounded.
func NewBounded(recentSize, poolSize, maxVertices int) (*Tracker, error) {
	if recentSize < 1 {
		return nil, fmt.Errorf("candidates: recentSize must be >= 1, got %d", recentSize)
	}
	if poolSize < 1 {
		return nil, fmt.Errorf("candidates: poolSize must be >= 1, got %d", poolSize)
	}
	if maxVertices < 0 {
		maxVertices = 0
	}
	return &Tracker{
		recentSize:  recentSize,
		poolSize:    poolSize,
		maxVertices: maxVertices,
		vertices:    make(map[uint64]*vertexCand),
	}, nil
}

// MaxVertices returns the configured vertex cap (0 = unbounded).
func (t *Tracker) MaxVertices() int { return t.maxVertices }

// Reserve pre-sizes the vertex map for n expected vertices, avoiding
// incremental rehashes during bulk ingest. A sizing hint only; it never
// shrinks and existing state is preserved.
func (t *Tracker) Reserve(n int) {
	if n <= len(t.vertices) {
		return
	}
	m := make(map[uint64]*vertexCand, n)
	for id, st := range t.vertices {
		m[id] = st
	}
	t.vertices = m
}

// ProcessEdge folds one stream edge into the tracker: each endpoint's
// recent neighbors become counted candidates of the other endpoint.
// Self-loops are ignored. Cost: O(recentSize + poolSize) per edge.
func (t *Tracker) ProcessEdge(e stream.Edge) {
	if e.IsSelfLoop() {
		return
	}
	u := t.state(e.U)
	v := t.state(e.V)
	// Two-hop paths ending at the *other* endpoint's recent neighbors.
	t.countAll(u, v, e.U)
	t.countAll(v, u, e.V)
	// Record the new adjacency afterwards, so an edge does not make a
	// vertex its own candidate via itself.
	u.remember(e.V, t.recentSize)
	v.remember(e.U, t.recentSize)
}

// countAll counts every recent neighbor w of `via` as a candidate of
// `self` (vertex id selfID), skipping self-candidature.
func (t *Tracker) countAll(self, via *vertexCand, selfID uint64) {
	n := len(via.recent)
	for i := 0; i < n; i++ {
		w := via.recent[i]
		if w == selfID {
			continue
		}
		self.count(w, t.poolSize)
	}
}

func (t *Tracker) state(u uint64) *vertexCand {
	st := t.vertices[u]
	if st == nil {
		if t.maxVertices > 0 && len(t.vertices) >= t.maxVertices {
			t.evictOldest()
		}
		t.seq++
		st = &vertexCand{seq: t.seq}
		t.vertices[u] = st
		if t.maxVertices > 0 { // unbounded trackers pay no queue
			t.fifo = append(t.fifo, fifoEntry{id: u, seq: t.seq})
		}
	}
	return st
}

// evictOldest drops the oldest-inserted live vertex, skipping queue
// entries staled by an earlier eviction-and-reinsert of the same id.
func (t *Tracker) evictOldest() {
	for t.head < len(t.fifo) {
		fe := t.fifo[t.head]
		t.head++
		if st := t.vertices[fe.id]; st != nil && st.seq == fe.seq {
			delete(t.vertices, fe.id)
			break
		}
	}
	// Compact once the drained prefix dominates, keeping the queue
	// proportional to the live vertex count.
	if t.head > 64 && t.head > len(t.fifo)/2 {
		t.fifo = append(t.fifo[:0], t.fifo[t.head:]...)
		t.head = 0
	}
}

// remember appends w to the recent-neighbor ring.
func (vc *vertexCand) remember(w uint64, size int) {
	if len(vc.recent) < size {
		vc.recent = append(vc.recent, w)
		return
	}
	vc.recent[vc.pos] = w
	vc.pos = (vc.pos + 1) % size
}

// count records one hit for candidate w using the space-saving rule:
// increment if present; insert if room; otherwise overwrite the
// minimum-hit entry with hits = min + 1.
func (vc *vertexCand) count(w uint64, poolSize int) {
	minIdx := -1
	var minHits int64 = 1<<63 - 1
	for i := range vc.pool {
		e := &vc.pool[i]
		if e.id == w {
			e.hits++
			return
		}
		if e.hits < minHits {
			minHits = e.hits
			minIdx = i
		}
	}
	if len(vc.pool) < poolSize {
		vc.pool = append(vc.pool, poolEntry{id: w, hits: 1})
		return
	}
	vc.pool[minIdx] = poolEntry{id: w, hits: minHits + 1}
}

// Candidates returns u's current candidate vertices ordered by
// descending hit count (ties toward smaller id, so output is
// deterministic). The slice is freshly allocated.
func (t *Tracker) Candidates(u uint64) []uint64 {
	st := t.vertices[u]
	if st == nil {
		return nil
	}
	entries := append([]poolEntry(nil), st.pool...)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].hits != entries[j].hits {
			return entries[i].hits > entries[j].hits
		}
		return entries[i].id < entries[j].id
	})
	out := make([]uint64, len(entries))
	for i, e := range entries {
		out[i] = e.id
	}
	return out
}

// Knows reports whether u has appeared in the stream.
func (t *Tracker) Knows(u uint64) bool { return t.vertices[u] != nil }

// NumVertices returns the number of tracked vertices.
func (t *Tracker) NumVertices() int { return len(t.vertices) }

// MemoryBytes returns the tracker's payload memory: per vertex, the
// recent ring (8 bytes/slot) and the pool (16 bytes/entry) at their
// current sizes, plus the usual rough map overhead — and, when a vertex
// cap is set, the eviction queue (16 bytes/entry).
func (t *Tracker) MemoryBytes() int {
	const vertexOverhead = 48
	total := 16 * cap(t.fifo)
	for _, st := range t.vertices {
		total += vertexOverhead + 8*cap(st.recent) + 16*cap(st.pool)
	}
	return total
}
