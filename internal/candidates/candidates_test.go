package candidates

import (
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Error("recentSize=0 should error")
	}
	if _, err := New(8, 0); err == nil {
		t.Error("poolSize=0 should error")
	}
	if _, err := New(4, 16); err != nil {
		t.Error(err)
	}
}

func TestTwoHopDiscovery(t *testing.T) {
	tr, _ := New(8, 16)
	// Path: 1-2 then 3-2. When (3,2) arrives, 2's recent = {1}, so 1
	// becomes a candidate of 3 (and 3 of nobody yet via 1's side).
	tr.ProcessEdge(stream.Edge{U: 1, V: 2})
	tr.ProcessEdge(stream.Edge{U: 3, V: 2})
	got := tr.Candidates(3)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Candidates(3) = %v, want [1]", got)
	}
	// Direction symmetric: when (3,2) arrived, 3 had no recent
	// neighbors, so 1 gained nothing... but 2's perspective: 2 counts
	// recent of 3 = empty. Candidates(1) gains 3 only after another
	// edge through 2.
	tr.ProcessEdge(stream.Edge{U: 1, V: 2})
	got = tr.Candidates(1)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("Candidates(1) = %v, want [3]", got)
	}
}

func TestNoSelfCandidates(t *testing.T) {
	tr, _ := New(8, 16)
	tr.ProcessEdge(stream.Edge{U: 1, V: 2})
	tr.ProcessEdge(stream.Edge{U: 1, V: 2}) // duplicate: 2's recent has 1
	for _, c := range tr.Candidates(1) {
		if c == 1 {
			t.Fatal("vertex became its own candidate")
		}
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	tr, _ := New(4, 8)
	tr.ProcessEdge(stream.Edge{U: 5, V: 5})
	if tr.Knows(5) || tr.NumVertices() != 0 {
		t.Error("self-loop should be ignored")
	}
}

func TestHitCountOrdering(t *testing.T) {
	tr, _ := New(8, 16)
	// Build a hub at 2 with spokes; vertex 1 connects to 2 repeatedly so
	// spokes seen more often rank higher.
	tr.ProcessEdge(stream.Edge{U: 10, V: 2})
	tr.ProcessEdge(stream.Edge{U: 1, V: 2}) // 1 sees {10}
	tr.ProcessEdge(stream.Edge{U: 11, V: 2})
	tr.ProcessEdge(stream.Edge{U: 1, V: 2}) // 1 sees {10, 11}
	tr.ProcessEdge(stream.Edge{U: 1, V: 2}) // 1 sees {10, 11} again
	got := tr.Candidates(1)
	if len(got) < 2 || got[0] != 10 {
		t.Errorf("Candidates(1) = %v, want 10 first (3 hits) then 11 (2)", got)
	}
}

func TestPoolBounded(t *testing.T) {
	const pool = 8
	tr, _ := New(16, pool)
	// Vertex 1 repeatedly touches a hub with hundreds of distinct spokes.
	for i := uint64(0); i < 300; i++ {
		tr.ProcessEdge(stream.Edge{U: 100 + i, V: 2})
		tr.ProcessEdge(stream.Edge{U: 1, V: 2})
	}
	got := tr.Candidates(1)
	if len(got) > pool {
		t.Errorf("pool grew to %d, cap %d", len(got), pool)
	}
}

func TestUnknownVertex(t *testing.T) {
	tr, _ := New(4, 8)
	if tr.Candidates(42) != nil {
		t.Error("unknown vertex should have nil candidates")
	}
	if tr.Knows(42) {
		t.Error("unknown vertex reported known")
	}
}

func TestMemoryBoundedPerVertex(t *testing.T) {
	tr, _ := New(8, 32)
	x := rng.NewXoshiro256(1)
	// Many edges over a fixed vertex set: memory must stop growing once
	// every vertex's ring and pool are at capacity.
	for i := 0; i < 5000; i++ {
		tr.ProcessEdge(stream.Edge{U: x.Uint64() % 100, V: x.Uint64() % 100})
	}
	m1 := tr.MemoryBytes()
	for i := 0; i < 5000; i++ {
		tr.ProcessEdge(stream.Edge{U: x.Uint64() % 100, V: x.Uint64() % 100})
	}
	if m2 := tr.MemoryBytes(); m2 > m1 {
		t.Errorf("memory grew %d → %d despite fixed vertex set at capacity", m1, m2)
	}
}

// TestRecallOfExactTwoHopTop measures the property the tracker exists
// for: its pool should contain most of the exact top two-hop partners
// (by common-neighbor count) of active vertices.
func TestRecallOfExactTwoHopTop(t *testing.T) {
	src, err := gen.Coauthor(800, 5000, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := New(8, 64)
	g := graph.New()
	for _, e := range edges {
		tr.ProcessEdge(e)
		g.AddEdge(e.U, e.V)
	}
	x := rng.NewXoshiro256(7)
	vs := g.VertexSlice()
	var recallSum float64
	samples := 0
	for samples < 50 {
		u := vs[x.Intn(len(vs))]
		hops := g.TwoHopNeighbors(u)
		if len(hops) < 10 {
			continue
		}
		// Exact top-5 two-hop partners by CN.
		type sc struct {
			v  uint64
			cn int
		}
		best := make([]sc, 0, len(hops))
		for _, w := range hops {
			best = append(best, sc{w, g.CommonNeighbors(u, w)})
		}
		for i := 0; i < len(best); i++ {
			for j := i + 1; j < len(best); j++ {
				if best[j].cn > best[i].cn {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		top := best[:5]
		pool := make(map[uint64]bool)
		for _, c := range tr.Candidates(u) {
			pool[c] = true
		}
		hits := 0
		for _, b := range top {
			if pool[b.v] {
				hits++
			}
		}
		recallSum += float64(hits) / float64(len(top))
		samples++
	}
	if recall := recallSum / float64(samples); recall < 0.5 {
		t.Errorf("tracker recall of exact top-5 two-hop partners = %.2f, want >= 0.5", recall)
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() *Tracker {
		tr, _ := New(4, 16)
		x := rng.NewXoshiro256(3)
		for i := 0; i < 2000; i++ {
			tr.ProcessEdge(stream.Edge{U: x.Uint64() % 50, V: x.Uint64() % 50})
		}
		return tr
	}
	a, b := mk(), mk()
	for u := uint64(0); u < 50; u++ {
		ca, cb := a.Candidates(u), b.Candidates(u)
		if len(ca) != len(cb) {
			t.Fatalf("vertex %d: candidate counts differ", u)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("vertex %d: candidates differ at %d", u, i)
			}
		}
	}
}
