package candidates

import (
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Error("recentSize=0 should error")
	}
	if _, err := New(8, 0); err == nil {
		t.Error("poolSize=0 should error")
	}
	if _, err := New(4, 16); err != nil {
		t.Error(err)
	}
}

func TestTwoHopDiscovery(t *testing.T) {
	tr, _ := New(8, 16)
	// Path: 1-2 then 3-2. When (3,2) arrives, 2's recent = {1}, so 1
	// becomes a candidate of 3 (and 3 of nobody yet via 1's side).
	tr.ProcessEdge(stream.Edge{U: 1, V: 2})
	tr.ProcessEdge(stream.Edge{U: 3, V: 2})
	got := tr.Candidates(3)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Candidates(3) = %v, want [1]", got)
	}
	// Direction symmetric: when (3,2) arrived, 3 had no recent
	// neighbors, so 1 gained nothing... but 2's perspective: 2 counts
	// recent of 3 = empty. Candidates(1) gains 3 only after another
	// edge through 2.
	tr.ProcessEdge(stream.Edge{U: 1, V: 2})
	got = tr.Candidates(1)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("Candidates(1) = %v, want [3]", got)
	}
}

func TestNoSelfCandidates(t *testing.T) {
	tr, _ := New(8, 16)
	tr.ProcessEdge(stream.Edge{U: 1, V: 2})
	tr.ProcessEdge(stream.Edge{U: 1, V: 2}) // duplicate: 2's recent has 1
	for _, c := range tr.Candidates(1) {
		if c == 1 {
			t.Fatal("vertex became its own candidate")
		}
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	tr, _ := New(4, 8)
	tr.ProcessEdge(stream.Edge{U: 5, V: 5})
	if tr.Knows(5) || tr.NumVertices() != 0 {
		t.Error("self-loop should be ignored")
	}
}

func TestHitCountOrdering(t *testing.T) {
	tr, _ := New(8, 16)
	// Build a hub at 2 with spokes; vertex 1 connects to 2 repeatedly so
	// spokes seen more often rank higher.
	tr.ProcessEdge(stream.Edge{U: 10, V: 2})
	tr.ProcessEdge(stream.Edge{U: 1, V: 2}) // 1 sees {10}
	tr.ProcessEdge(stream.Edge{U: 11, V: 2})
	tr.ProcessEdge(stream.Edge{U: 1, V: 2}) // 1 sees {10, 11}
	tr.ProcessEdge(stream.Edge{U: 1, V: 2}) // 1 sees {10, 11} again
	got := tr.Candidates(1)
	if len(got) < 2 || got[0] != 10 {
		t.Errorf("Candidates(1) = %v, want 10 first (3 hits) then 11 (2)", got)
	}
}

func TestPoolBounded(t *testing.T) {
	const pool = 8
	tr, _ := New(16, pool)
	// Vertex 1 repeatedly touches a hub with hundreds of distinct spokes.
	for i := uint64(0); i < 300; i++ {
		tr.ProcessEdge(stream.Edge{U: 100 + i, V: 2})
		tr.ProcessEdge(stream.Edge{U: 1, V: 2})
	}
	got := tr.Candidates(1)
	if len(got) > pool {
		t.Errorf("pool grew to %d, cap %d", len(got), pool)
	}
}

func TestUnknownVertex(t *testing.T) {
	tr, _ := New(4, 8)
	if tr.Candidates(42) != nil {
		t.Error("unknown vertex should have nil candidates")
	}
	if tr.Knows(42) {
		t.Error("unknown vertex reported known")
	}
}

func TestMemoryBoundedPerVertex(t *testing.T) {
	tr, _ := New(8, 32)
	x := rng.NewXoshiro256(1)
	// Many edges over a fixed vertex set: memory must stop growing once
	// every vertex's ring and pool are at capacity.
	for i := 0; i < 5000; i++ {
		tr.ProcessEdge(stream.Edge{U: x.Uint64() % 100, V: x.Uint64() % 100})
	}
	m1 := tr.MemoryBytes()
	for i := 0; i < 5000; i++ {
		tr.ProcessEdge(stream.Edge{U: x.Uint64() % 100, V: x.Uint64() % 100})
	}
	if m2 := tr.MemoryBytes(); m2 > m1 {
		t.Errorf("memory grew %d → %d despite fixed vertex set at capacity", m1, m2)
	}
}

// TestRecallOfExactTwoHopTop measures the property the tracker exists
// for: its pool should contain most of the exact top two-hop partners
// (by common-neighbor count) of active vertices.
func TestRecallOfExactTwoHopTop(t *testing.T) {
	src, err := gen.Coauthor(800, 5000, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := New(8, 64)
	g := graph.New()
	for _, e := range edges {
		tr.ProcessEdge(e)
		g.AddEdge(e.U, e.V)
	}
	x := rng.NewXoshiro256(7)
	vs := g.VertexSlice()
	var recallSum float64
	samples := 0
	for samples < 50 {
		u := vs[x.Intn(len(vs))]
		hops := g.TwoHopNeighbors(u)
		if len(hops) < 10 {
			continue
		}
		// Exact top-5 two-hop partners by CN.
		type sc struct {
			v  uint64
			cn int
		}
		best := make([]sc, 0, len(hops))
		for _, w := range hops {
			best = append(best, sc{w, g.CommonNeighbors(u, w)})
		}
		for i := 0; i < len(best); i++ {
			for j := i + 1; j < len(best); j++ {
				if best[j].cn > best[i].cn {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		top := best[:5]
		pool := make(map[uint64]bool)
		for _, c := range tr.Candidates(u) {
			pool[c] = true
		}
		hits := 0
		for _, b := range top {
			if pool[b.v] {
				hits++
			}
		}
		recallSum += float64(hits) / float64(len(top))
		samples++
	}
	if recall := recallSum / float64(samples); recall < 0.5 {
		t.Errorf("tracker recall of exact top-5 two-hop partners = %.2f, want >= 0.5", recall)
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() *Tracker {
		tr, _ := New(4, 16)
		x := rng.NewXoshiro256(3)
		for i := 0; i < 2000; i++ {
			tr.ProcessEdge(stream.Edge{U: x.Uint64() % 50, V: x.Uint64() % 50})
		}
		return tr
	}
	a, b := mk(), mk()
	for u := uint64(0); u < 50; u++ {
		ca, cb := a.Candidates(u), b.Candidates(u)
		if len(ca) != len(cb) {
			t.Fatalf("vertex %d: candidate counts differ", u)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("vertex %d: candidates differ at %d", u, i)
			}
		}
	}
}

// TestRingSeenPrePostWrap is the regression for the removal of the
// ring's unused fill flag: countAll must see every occupied slot both
// before the ring has wrapped (partial fill) and after.
func TestRingSeenPrePostWrap(t *testing.T) {
	tr, _ := New(3, 16)
	// Pre-wrap: 1's ring holds {10, 11} (2 of 3 slots).
	tr.ProcessEdge(stream.Edge{U: 1, V: 10})
	tr.ProcessEdge(stream.Edge{U: 1, V: 11})
	tr.ProcessEdge(stream.Edge{U: 2, V: 1})
	got := tr.Candidates(2)
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("pre-wrap Candidates(2) = %v, want [10 11]", got)
	}
	// Post-wrap: two more neighbors push the ring past capacity; 1's
	// ring is now {13, 2, 12} (10 and 11 overwritten).
	tr.ProcessEdge(stream.Edge{U: 1, V: 12})
	tr.ProcessEdge(stream.Edge{U: 1, V: 13})
	tr.ProcessEdge(stream.Edge{U: 3, V: 1})
	got = tr.Candidates(3)
	if len(got) != 3 {
		t.Fatalf("post-wrap Candidates(3) = %v, want 3 candidates", got)
	}
	want := map[uint64]bool{2: true, 12: true, 13: true}
	for _, c := range got {
		if !want[c] {
			t.Fatalf("post-wrap Candidates(3) = %v, want the current ring {2, 12, 13}", got)
		}
	}
}

func TestBoundedValidation(t *testing.T) {
	if _, err := NewBounded(0, 8, 10); err == nil {
		t.Error("recentSize=0 should error")
	}
	if tr, err := NewBounded(4, 8, -5); err != nil || tr.MaxVertices() != 0 {
		t.Errorf("negative cap should normalize to unbounded, got (%v, %v)", tr, err)
	}
}

// TestMaxVerticesCap: with a vertex cap, the tracker never holds more
// than maxVertices states however many distinct vertices the stream
// produces, eviction is oldest-first, and evicted vertices can return.
func TestMaxVerticesCap(t *testing.T) {
	const cap = 4
	tr, _ := NewBounded(4, 8, cap)
	for i := uint64(0); i < 100; i += 2 {
		tr.ProcessEdge(stream.Edge{U: i, V: i + 1})
		if n := tr.NumVertices(); n > cap {
			t.Fatalf("after edge %d: %d vertices live, cap %d", i, n, cap)
		}
	}
	// The survivors are exactly the most recently inserted cap vertices.
	for _, u := range []uint64{96, 97, 98, 99} {
		if !tr.Knows(u) {
			t.Fatalf("recently inserted vertex %d was evicted", u)
		}
	}
	if tr.Knows(0) || tr.Knows(50) {
		t.Fatal("old vertices survived past the cap")
	}
	// An evicted vertex re-enters cleanly with fresh state.
	tr.ProcessEdge(stream.Edge{U: 0, V: 99})
	if !tr.Knows(0) {
		t.Fatal("evicted vertex could not re-enter")
	}
	if n := tr.NumVertices(); n > cap {
		t.Fatalf("re-entry pushed the tracker to %d vertices, cap %d", n, cap)
	}
}

// TestMaxVerticesMemoryBounded: under heavy vertex churn the capped
// tracker's memory (including the eviction queue) stays bounded.
func TestMaxVerticesMemoryBounded(t *testing.T) {
	tr, _ := NewBounded(8, 32, 64)
	x := rng.NewXoshiro256(9)
	for i := 0; i < 20000; i++ {
		tr.ProcessEdge(stream.Edge{U: x.Uint64(), V: x.Uint64()})
	}
	m1 := tr.MemoryBytes()
	for i := 0; i < 20000; i++ {
		tr.ProcessEdge(stream.Edge{U: x.Uint64(), V: x.Uint64()})
	}
	m2 := tr.MemoryBytes()
	// The queue compacts, so memory may wobble but not trend upward:
	// allow a small slack over the first measurement.
	if m2 > m1*2 {
		t.Errorf("capped tracker memory grew %d -> %d under churn", m1, m2)
	}
	if tr.NumVertices() > 64 {
		t.Errorf("%d vertices live, cap 64", tr.NumVertices())
	}
}
