package candidates

import (
	"fmt"
	"sort"
)

// SpaceSaving is a standalone Metwally–Agrawal–El Abbadi space-saving
// heavy-hitter summary: it maintains the approximately most frequent
// items of a stream in O(capacity) memory, whatever the stream length
// or item-universe size.
//
// Guarantees (N = total observations, c = capacity):
//
//   - every item whose true frequency exceeds N/c is in the summary;
//   - Count never underestimates: trueCount ≤ Count ≤ trueCount + Err,
//     where Err is the count the entry inherited when it overwrote the
//     previous minimum (0 for items present since their first arrival);
//   - Err ≤ N/c for every entry.
//
// Eviction is deterministic: when the summary is full and a new item
// arrives, the minimum-count entry is overwritten, ties broken toward
// the smaller item id. Equal observation sequences therefore produce
// byte-identical summaries — the property the engine's reproducibility
// tests (and any promotion signal derived from a summary) rely on.
//
// The Tracker's per-vertex candidate pools apply the same replacement
// rule inline; SpaceSaving is the reusable whole-stream form, suitable
// for global hot-vertex detection (e.g. sizing a tier ladder's
// promotion thresholds before configuring Config.Tiers).
//
// Not safe for concurrent use.
type SpaceSaving struct {
	capacity int
	observed int64
	entries  []ssEntry
	index    map[uint64]int // item id → position in entries
}

type ssEntry struct {
	id    uint64
	count int64
	err   int64
}

// HeavyHitter is one Top result: an item with its estimated count and
// the maximum overestimation error of that estimate.
type HeavyHitter struct {
	ID    uint64
	Count int64
	Err   int64
}

// NewSpaceSaving returns an empty summary tracking at most capacity
// items. It returns an error if capacity < 1.
func NewSpaceSaving(capacity int) (*SpaceSaving, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("candidates: space-saving capacity must be >= 1, got %d", capacity)
	}
	return &SpaceSaving{
		capacity: capacity,
		index:    make(map[uint64]int, capacity),
	}, nil
}

// Observe records one occurrence of id. Cost: O(1) map work when id is
// already tracked or the summary has room, O(capacity) for the
// deterministic minimum scan on replacement.
func (s *SpaceSaving) Observe(id uint64) { s.ObserveN(id, 1) }

// ObserveN records n occurrences of id at once (n <= 0 is a no-op) —
// the weighted form replay loops use when folding pre-aggregated
// counts.
func (s *SpaceSaving) ObserveN(id uint64, n int64) {
	if n <= 0 {
		return
	}
	s.observed += n
	if i, ok := s.index[id]; ok {
		s.entries[i].count += n
		return
	}
	if len(s.entries) < s.capacity {
		s.index[id] = len(s.entries)
		s.entries = append(s.entries, ssEntry{id: id, count: n})
		return
	}
	// Replace the minimum-count entry, ties toward the smaller id, so
	// equal streams evict identically regardless of map iteration order.
	minIdx := 0
	for i := 1; i < len(s.entries); i++ {
		e, m := &s.entries[i], &s.entries[minIdx]
		if e.count < m.count || (e.count == m.count && e.id < m.id) {
			minIdx = i
		}
	}
	old := s.entries[minIdx]
	delete(s.index, old.id)
	s.index[id] = minIdx
	s.entries[minIdx] = ssEntry{id: id, count: old.count + n, err: old.count}
}

// Count returns the estimated count of id and its maximum overestimate.
// ok is false when id is not in the summary (its true count is then at
// most the current minimum entry count, itself at most Observed/cap).
func (s *SpaceSaving) Count(id uint64) (count, err int64, ok bool) {
	i, ok := s.index[id]
	if !ok {
		return 0, 0, false
	}
	return s.entries[i].count, s.entries[i].err, true
}

// Top returns the k entries with the largest estimated counts, ordered
// by descending count with ties toward smaller ids (deterministic).
// k <= 0 or k > Len returns all entries.
func (s *SpaceSaving) Top(k int) []HeavyHitter {
	out := make([]HeavyHitter, len(s.entries))
	for i, e := range s.entries {
		out[i] = HeavyHitter{ID: e.id, Count: e.count, Err: e.err}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Observed returns the total number of observations folded in.
func (s *SpaceSaving) Observed() int64 { return s.observed }

// Len returns the number of tracked items (≤ Capacity).
func (s *SpaceSaving) Len() int { return len(s.entries) }

// Capacity returns the maximum number of tracked items.
func (s *SpaceSaving) Capacity() int { return s.capacity }

// MemoryBytes returns the summary's payload memory: the entry array
// plus the usual rough per-key map overhead. Constant once the summary
// fills, whatever the stream length.
func (s *SpaceSaving) MemoryBytes() int {
	const mapOverhead = 48
	return 24*cap(s.entries) + mapOverhead*len(s.index)
}
