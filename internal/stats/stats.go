// Package stats provides the small statistical toolkit used by the
// evaluation harness: summary statistics, quantiles, confidence
// intervals, rank correlations, histograms, and simple linear regression.
//
// Everything operates on plain float64 slices and is deterministic.
// Functions follow one convention for degenerate input: statistics that
// are undefined on empty (or too-short) input return NaN rather than
// panicking, so a misconfigured experiment produces visibly-broken output
// instead of crashing a long benchmark run.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs, or NaN if
// len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs, or NaN if
// len(xs) < 2.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It returns NaN if xs is empty or q is outside [0, 1]. xs is not
// modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns the given quantiles of xs, sorting once. It returns
// NaN entries under the same conditions as Quantile.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			out[i] = math.NaN()
			continue
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs, or NaN if xs is empty.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MeanCI returns the mean of xs together with the half-width of a normal
// approximation confidence interval at the given confidence level
// (e.g. 0.95). It returns (NaN, NaN) if len(xs) < 2 or level is outside
// (0, 1).
func MeanCI(xs []float64, level float64) (mean, halfWidth float64) {
	if len(xs) < 2 || level <= 0 || level >= 1 {
		return math.NaN(), math.NaN()
	}
	m := Mean(xs)
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	z := normalQuantile(0.5 + level/2)
	return m, z * se
}

// normalQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation (|error| < 1.15e-9),
// which is far more accuracy than a confidence interval needs.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	// Coefficients of Acklam's approximation.
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples, or NaN if the lengths differ, are < 2, or either side has zero
// variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation of the paired samples
// (Pearson correlation of the ranks, with ties assigned mid-ranks), or
// NaN under the same conditions as Pearson.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based ranks of xs, assigning tied values their
// mid-rank (the average of the positions they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1 // mid-rank, 1-based
		for t := i; t <= j; t++ {
			ranks[idx[t]] = mid
		}
		i = j + 1
	}
	return ranks
}

// KendallTau returns Kendall's τ-b rank correlation of the paired
// samples, handling ties in either variable. It returns NaN if the
// lengths differ, are < 2, or either side is entirely tied. The
// implementation is the direct O(n²) pair scan — the harness compares
// rankings of at most a few thousand pairs, where simplicity beats an
// O(n log n) merge-sort variant.
func KendallTau(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	var concordant, discordant, tiesX, tiesY float64
	n := len(xs)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				// tied in both: contributes to neither
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	denom := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if denom == 0 {
		return math.NaN()
	}
	return (concordant - discordant) / denom
}

// Histogram is a fixed-width bucket histogram over [lo, hi).
type Histogram struct {
	lo, hi  float64
	buckets []int
	// under and over count samples outside [lo, hi).
	under, over int
	total       int
}

// NewHistogram returns a histogram with n equal-width buckets spanning
// [lo, hi). It panics if n <= 0 or hi <= lo (programmer error).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: NewHistogram requires n > 0 and hi > lo")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int(float64(len(h.buckets)) * (x - h.lo) / (h.hi - h.lo))
		if i == len(h.buckets) { // guard float rounding at the top edge
			i--
		}
		h.buckets[i]++
	}
}

// Count returns the number of observations recorded, including out-of-
// range ones.
func (h *Histogram) Count() int { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// NumBuckets returns the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// OutOfRange returns the counts below lo and at/above hi.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// BucketBounds returns the [lo, hi) range covered by bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.buckets))
	return h.lo + float64(i)*w, h.lo + float64(i+1)*w
}

// LinearFit returns the least-squares slope and intercept of y on x, or
// (NaN, NaN) if the lengths differ, are < 2, or x has zero variance. The
// harness uses it to report throughput trends (e.g. ns/edge vs k).
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return math.NaN(), math.NaN()
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}
