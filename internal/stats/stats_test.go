package stats

import (
	"math"
	"testing"
	"testing/quick"

	"linkpred/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{[]float64{2.5, 2.5, 2.5, 2.5}, 2.5},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance (n-1): sum of squares = 32, n-1 = 7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	if Min(xs) != -9 || Max(xs) != 6 {
		t.Errorf("Min/Max = %v/%v, want -9/6", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("out-of-range q should give NaN")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("Quantile of singleton = %v, want 7", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	x := rng.NewXoshiro256(1)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = x.Float64()
	}
	qs := []float64{0, 0.1, 0.5, 0.9, 0.99, 1}
	got := Quantiles(xs, qs...)
	for i, q := range qs {
		if want := Quantile(xs, q); !almostEqual(got[i], want, 1e-12) {
			t.Errorf("Quantiles[%v] = %v, want %v", q, got[i], want)
		}
	}
	for _, v := range Quantiles(nil, 0.5) {
		if !math.IsNaN(v) {
			t.Error("Quantiles of empty should be NaN")
		}
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{1, 3, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
}

func TestMeanCI(t *testing.T) {
	x := rng.NewXoshiro256(2)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = x.NormFloat64()*2 + 10
	}
	mean, hw := MeanCI(xs, 0.95)
	if !almostEqual(mean, 10, 0.3) {
		t.Errorf("mean = %v, want ~10", mean)
	}
	// Half width should be ~1.96 * 2/sqrt(1000) ≈ 0.124.
	if !almostEqual(hw, 1.96*2/math.Sqrt(1000), 0.02) {
		t.Errorf("half-width = %v, want ~0.124", hw)
	}
	if m, h := MeanCI([]float64{1}, 0.95); !math.IsNaN(m) || !math.IsNaN(h) {
		t.Error("MeanCI of one sample should be NaN")
	}
	if m, _ := MeanCI(xs, 1.5); !math.IsNaN(m) {
		t.Error("MeanCI with bad level should be NaN")
	}
}

func TestMeanCICoverage(t *testing.T) {
	// Over many resamples, the 90% CI should contain the true mean ~90%
	// of the time.
	x := rng.NewXoshiro256(3)
	const trials = 1000
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = x.NormFloat64()
		}
		mean, hw := MeanCI(xs, 0.90)
		if math.Abs(mean) <= hw {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.85 || rate > 0.95 {
		t.Errorf("90%% CI covered true mean %.1f%% of the time", 100*rate)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.975, 1.959964}, {0.95, 1.644854}, {0.025, -1.959964},
		{0.999, 3.090232}, {0.001, -3.090232},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); !almostEqual(got, c.want, 1e-4) {
			t.Errorf("normalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) {
		t.Error("normalQuantile at 0/1 should be NaN")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect positive Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect negative Pearson = %v, want -1", got)
	}
	if !math.IsNaN(Pearson(xs, ys[:3])) {
		t.Error("length mismatch should give NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Error("zero variance should give NaN")
	}
}

func TestSpearmanMonotonic(t *testing.T) {
	// Spearman is invariant under monotone transforms.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // x^3: nonlinear but monotone
	if got := Spearman(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Spearman of monotone data = %v, want 1", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestKendallTau(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := KendallTau(xs, xs); !almostEqual(got, 1, 1e-12) {
		t.Errorf("tau of identical = %v, want 1", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := KendallTau(xs, rev); !almostEqual(got, -1, 1e-12) {
		t.Errorf("tau of reversed = %v, want -1", got)
	}
	// Known small example with one discordant pair:
	// pairs of (1,2,3) vs (1,3,2): C=2, D=1, tau = 1/3.
	if got := KendallTau([]float64{1, 2, 3}, []float64{1, 3, 2}); !almostEqual(got, 1.0/3, 1e-12) {
		t.Errorf("tau = %v, want 1/3", got)
	}
	if !math.IsNaN(KendallTau([]float64{1, 1}, []float64{1, 2})) {
		t.Error("all-tied x should give NaN")
	}
}

func TestKendallTauIndependentNearZero(t *testing.T) {
	x := rng.NewXoshiro256(4)
	n := 500
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = x.Float64()
		ys[i] = x.Float64()
	}
	if got := KendallTau(xs, ys); math.Abs(got) > 0.08 {
		t.Errorf("tau of independent data = %v, want ~0", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5.5, 9.999, -1, 10, 42} {
		h.Add(x)
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("OutOfRange = %d/%d, want 1/2", under, over)
	}
	wantBuckets := []int{2, 1, 1, 0, 1}
	for i, w := range wantBuckets {
		if got := h.Bucket(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	lo, hi := h.BucketBounds(2)
	if lo != 4 || hi != 6 {
		t.Errorf("BucketBounds(2) = [%v, %v), want [4, 6)", lo, hi)
	}
	if h.NumBuckets() != 5 {
		t.Errorf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	// A value infinitesimally below hi must land in the last bucket even
	// if float rounding pushes the index to len(buckets).
	h := NewHistogram(0, 0.3, 3)
	h.Add(math.Nextafter(0.3, 0))
	if h.Bucket(2) != 1 {
		t.Error("top-edge value not placed in last bucket")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(1, 0, 3) did not panic")
		}
	}()
	NewHistogram(1, 0, 3)
}

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept := LinearFit(xs, ys)
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 3, 1e-12) {
		t.Errorf("fit = (%v, %v), want (2, 3)", slope, intercept)
	}
	if s, _ := LinearFit(xs, ys[:2]); !math.IsNaN(s) {
		t.Error("length mismatch should give NaN")
	}
	if s, _ := LinearFit([]float64{2, 2}, []float64{1, 5}); !math.IsNaN(s) {
		t.Error("zero x-variance should give NaN")
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	x := rng.NewXoshiro256(5)
	if err := quick.Check(func(seed uint64) bool {
		n := int(seed%50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = x.Float64() * 100
		}
		q := x.Float64()
		v := Quantile(xs, q)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPearsonSymmetryProperty(t *testing.T) {
	x := rng.NewXoshiro256(6)
	if err := quick.Check(func(seed uint64) bool {
		n := int(seed%40) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = x.NormFloat64()
			ys[i] = x.NormFloat64()
		}
		a, b := Pearson(xs, ys), Pearson(ys, xs)
		if math.IsNaN(a) && math.IsNaN(b) {
			return true
		}
		return almostEqual(a, b, 1e-12) && a >= -1-1e-12 && a <= 1+1e-12
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
