// Package baseline provides the comparison systems the sketch predictor
// is evaluated against:
//
//   - Exact: keeps the entire graph in memory and answers queries
//     exactly. It is the "snapshot" approach the paper argues is
//     unavailable in the streaming setting — unbounded memory, but the
//     accuracy ceiling every sketch is measured against.
//   - Reservoir: keeps a uniform edge reservoir of fixed capacity and
//     scales subgraph measurements back up by the sampling rate — the
//     natural bounded-memory straw-man. It matches the sketches' memory
//     budget but, as experiments E5/E6 show, not their accuracy.
//
// All systems (including *core.SketchStore*) satisfy the System
// interface, so the evaluation harness treats them uniformly.
package baseline

import (
	"fmt"
	"math"

	"linkpred/internal/exact"
	"linkpred/internal/graph"
	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

// System is a streaming link-prediction system: it consumes edges one at
// a time and answers the three target-measure queries at any point.
type System interface {
	// ProcessEdge folds one stream edge into the system's state.
	ProcessEdge(e stream.Edge)
	// EstimateJaccard estimates the Jaccard coefficient of (u, v).
	EstimateJaccard(u, v uint64) float64
	// EstimateCommonNeighbors estimates |N(u) ∩ N(v)|.
	EstimateCommonNeighbors(u, v uint64) float64
	// EstimateAdamicAdar estimates the Adamic–Adar index of (u, v).
	EstimateAdamicAdar(u, v uint64) float64
	// MemoryBytes reports the system's current payload memory.
	MemoryBytes() int
}

// Exact is the unbounded-memory reference System: a full adjacency graph.
type Exact struct {
	g *graph.Graph
}

// NewExact returns an empty exact system.
func NewExact() *Exact { return &Exact{g: graph.New()} }

// ProcessEdge implements System.
func (e *Exact) ProcessEdge(ed stream.Edge) { e.g.AddEdge(ed.U, ed.V) }

// EstimateJaccard implements System (exactly).
func (e *Exact) EstimateJaccard(u, v uint64) float64 { return exact.Jaccard(e.g, u, v) }

// EstimateCommonNeighbors implements System (exactly).
func (e *Exact) EstimateCommonNeighbors(u, v uint64) float64 {
	return exact.CommonNeighbors(e.g, u, v)
}

// EstimateAdamicAdar implements System (exactly).
func (e *Exact) EstimateAdamicAdar(u, v uint64) float64 { return exact.AdamicAdar(e.g, u, v) }

// MemoryBytes implements System.
func (e *Exact) MemoryBytes() int { return e.g.MemoryBytes() }

// Graph exposes the underlying graph for ground-truth use by the
// evaluation harness.
func (e *Exact) Graph() *graph.Graph { return e.g }

// Reservoir is the bounded-memory straw-man System: a uniform reservoir
// of at most capacity edges (Algorithm R over the deduplicated edge
// sequence), with measures computed on the sampled subgraph and scaled by
// the sampling rate.
//
// With sampling rate p = |reservoir| / |distinct edges seen|, a common
// neighbor w of (u, v) survives in the sample only if both edges (u,w)
// and (v,w) survive — probability ≈ p² — so subgraph counts are scaled by
// 1/p². Degrees scale by 1/p. The estimators are consistent but carry
// O(1/(p√CN)) noise, which is the point of the comparison.
type Reservoir struct {
	capacity int
	x        *rng.Xoshiro256
	g        *graph.Graph
	slots    []stream.Edge
	seen     int64 // distinct (canonical) edges observed
	dedup    map[[2]uint64]struct{}
}

// NewReservoir returns a reservoir System holding at most capacity edges.
// It returns an error if capacity < 1.
//
// The reservoir tracks *distinct* edges: duplicates in the stream are
// recognised via a fingerprint set. That set makes the implementation
// O(distinct edges) in memory in the worst case — strictly speaking more
// than the reservoir itself — but the measured MemoryBytes accounts for
// it, so comparisons against the sketches remain fair.
func NewReservoir(capacity int, seed uint64) (*Reservoir, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("baseline: reservoir capacity must be >= 1, got %d", capacity)
	}
	return &Reservoir{
		capacity: capacity,
		x:        rng.NewXoshiro256(seed),
		g:        graph.New(),
		dedup:    make(map[[2]uint64]struct{}),
	}, nil
}

// ProcessEdge implements System via Algorithm R.
func (r *Reservoir) ProcessEdge(e stream.Edge) {
	if e.IsSelfLoop() {
		return
	}
	c := e.Canonical()
	key := [2]uint64{c.U, c.V}
	if _, dup := r.dedup[key]; dup {
		return
	}
	r.dedup[key] = struct{}{}
	r.seen++
	if len(r.slots) < r.capacity {
		r.slots = append(r.slots, c)
		r.g.AddEdge(c.U, c.V)
		return
	}
	// Replace a random slot with probability capacity/seen.
	j := r.x.Uint64n(uint64(r.seen))
	if j >= uint64(r.capacity) {
		return
	}
	old := r.slots[j]
	r.g.RemoveEdge(old.U, old.V)
	r.slots[j] = c
	r.g.AddEdge(c.U, c.V)
}

// rate returns the current sampling probability p.
func (r *Reservoir) rate() float64 {
	if r.seen == 0 {
		return 1
	}
	p := float64(len(r.slots)) / float64(r.seen)
	if p > 1 {
		p = 1
	}
	return p
}

// EstimateCommonNeighbors implements System: subgraph count scaled by
// 1/p².
func (r *Reservoir) EstimateCommonNeighbors(u, v uint64) float64 {
	p := r.rate()
	return float64(r.g.CommonNeighbors(u, v)) / (p * p)
}

// EstimateJaccard implements System: ĈN / (d̂(u) + d̂(v) − ĈN) with
// degrees scaled by 1/p. The result is clamped to [0, 1] (scaled counts
// can transiently violate the set identity).
func (r *Reservoir) EstimateJaccard(u, v uint64) float64 {
	p := r.rate()
	cn := float64(r.g.CommonNeighbors(u, v)) / (p * p)
	union := float64(r.g.Degree(u))/p + float64(r.g.Degree(v))/p - cn
	if union <= 0 {
		return 0
	}
	j := cn / union
	return math.Max(0, math.Min(1, j))
}

// EstimateAdamicAdar implements System: Σ over sampled common neighbors
// of 1/ln(d̂(w)), scaled by 1/p², with the sampled degree scaled by 1/p
// and clamped at 2 so the logarithm stays positive.
func (r *Reservoir) EstimateAdamicAdar(u, v uint64) float64 {
	p := r.rate()
	sum := 0.0
	for _, w := range r.g.CommonNeighborSlice(u, v) {
		d := math.Max(float64(r.g.Degree(w))/p, 2)
		sum += 1 / math.Log(d)
	}
	return sum / (p * p)
}

// MemoryBytes implements System: the sampled subgraph, the slot array and
// the dedup fingerprint set.
func (r *Reservoir) MemoryBytes() int {
	const slotBytes = 24   // one stream.Edge
	const fingerprint = 32 // map entry for a [2]uint64 key
	return r.g.MemoryBytes() + slotBytes*cap(r.slots) + fingerprint*len(r.dedup)
}

// SampledEdges returns the current number of edges in the reservoir.
func (r *Reservoir) SampledEdges() int { return len(r.slots) }

// DistinctSeen returns the number of distinct edges observed so far.
func (r *Reservoir) DistinctSeen() int64 { return r.seen }
