package baseline

import (
	"math"
	"testing"

	"linkpred/internal/core"
	"linkpred/internal/exact"
	"linkpred/internal/graph"
	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

// Interface conformance: all three systems must satisfy System.
var (
	_ System = (*Exact)(nil)
	_ System = (*Reservoir)(nil)
	_ System = (*core.SketchStore)(nil)
)

func randomEdges(n, m int, seed uint64) []stream.Edge {
	x := rng.NewXoshiro256(seed)
	es := make([]stream.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := uint64(x.Intn(n))
		v := uint64(x.Intn(n - 1))
		if v >= u {
			v++
		}
		es = append(es, stream.Edge{U: u, V: v, T: int64(i)})
	}
	return es
}

func TestExactMatchesExactPackage(t *testing.T) {
	es := randomEdges(100, 2000, 1)
	sys := NewExact()
	g := graph.New()
	for _, e := range es {
		sys.ProcessEdge(e)
		g.AddEdge(e.U, e.V)
	}
	x := rng.NewXoshiro256(2)
	for i := 0; i < 200; i++ {
		u, v := uint64(x.Intn(100)), uint64(x.Intn(100))
		if sys.EstimateJaccard(u, v) != exact.Jaccard(g, u, v) ||
			sys.EstimateCommonNeighbors(u, v) != exact.CommonNeighbors(g, u, v) ||
			sys.EstimateAdamicAdar(u, v) != exact.AdamicAdar(g, u, v) {
			t.Fatalf("Exact system diverges from exact package at (%d,%d)", u, v)
		}
	}
	if sys.MemoryBytes() != g.MemoryBytes() {
		t.Error("Exact memory accounting should match underlying graph")
	}
	if sys.Graph().NumEdges() != g.NumEdges() {
		t.Error("Graph() accessor inconsistent")
	}
}

func TestReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(0, 1); err == nil {
		t.Error("capacity 0 should error")
	}
	if _, err := NewReservoir(-1, 1); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestReservoirCapacityRespected(t *testing.T) {
	r, err := NewReservoir(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range randomEdges(500, 5000, 4) {
		r.ProcessEdge(e)
	}
	if r.SampledEdges() > 100 {
		t.Errorf("reservoir holds %d edges, capacity 100", r.SampledEdges())
	}
	if r.SampledEdges() != 100 {
		t.Errorf("reservoir should be full: %d/100", r.SampledEdges())
	}
}

func TestReservoirSmallStreamKeepsEverything(t *testing.T) {
	r, _ := NewReservoir(1000, 5)
	es := randomEdges(50, 100, 6)
	distinct := make(map[[2]uint64]struct{})
	for _, e := range es {
		r.ProcessEdge(e)
		c := e.Canonical()
		distinct[[2]uint64{c.U, c.V}] = struct{}{}
	}
	if r.SampledEdges() != len(distinct) {
		t.Errorf("undersized stream: sampled %d, distinct %d", r.SampledEdges(), len(distinct))
	}
	// With p = 1 the estimates must be exact.
	g := graph.New()
	for _, e := range es {
		g.AddEdge(e.U, e.V)
	}
	x := rng.NewXoshiro256(7)
	for i := 0; i < 100; i++ {
		u, v := uint64(x.Intn(50)), uint64(x.Intn(50))
		if got, want := r.EstimateCommonNeighbors(u, v), exact.CommonNeighbors(g, u, v); math.Abs(got-want) > 1e-9 {
			t.Fatalf("p=1 CN(%d,%d) = %v, want %v", u, v, got, want)
		}
		if got, want := r.EstimateJaccard(u, v), exact.Jaccard(g, u, v); math.Abs(got-want) > 1e-9 {
			t.Fatalf("p=1 J(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

func TestReservoirIgnoresDuplicatesAndSelfLoops(t *testing.T) {
	r, _ := NewReservoir(10, 8)
	r.ProcessEdge(stream.Edge{U: 1, V: 2})
	r.ProcessEdge(stream.Edge{U: 2, V: 1})
	r.ProcessEdge(stream.Edge{U: 1, V: 2})
	r.ProcessEdge(stream.Edge{U: 3, V: 3})
	if r.DistinctSeen() != 1 {
		t.Errorf("DistinctSeen = %d, want 1", r.DistinctSeen())
	}
	if r.SampledEdges() != 1 {
		t.Errorf("SampledEdges = %d, want 1", r.SampledEdges())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each distinct edge should survive with probability ≈ capacity/seen.
	const capacity, total = 50, 500
	counts := make(map[uint64]int)
	sm := rng.NewSplitMix64(9)
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		r, _ := NewReservoir(capacity, sm.Uint64())
		for i := 0; i < total; i++ {
			// Distinct edges: (2i, 2i+1).
			r.ProcessEdge(stream.Edge{U: uint64(2 * i), V: uint64(2*i + 1)})
		}
		for _, e := range r.slots {
			counts[e.U/2]++
		}
	}
	want := float64(trials) * capacity / total
	for idx := uint64(0); idx < total; idx += 37 {
		got := float64(counts[idx])
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("edge %d sampled %v times, want ~%v", idx, got, want)
		}
	}
}

func TestReservoirCNEstimateUnbiasedish(t *testing.T) {
	// A pair with many common neighbors: mean estimate over independent
	// reservoirs should approach the truth.
	var es []stream.Edge
	const cn = 40
	for w := uint64(10); w < 10+cn; w++ {
		es = append(es, stream.Edge{U: 1, V: w}, stream.Edge{U: 2, V: w})
	}
	// Padding edges so the reservoir actually subsamples.
	for i := 0; i < 400; i++ {
		es = append(es, stream.Edge{U: uint64(1000 + 2*i), V: uint64(1001 + 2*i)})
	}
	sm := rng.NewSplitMix64(11)
	const trials = 300
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		r, _ := NewReservoir(120, sm.Uint64())
		for _, e := range es {
			r.ProcessEdge(e)
		}
		sum += r.EstimateCommonNeighbors(1, 2)
	}
	mean := sum / trials
	if math.Abs(mean-cn)/cn > 0.25 {
		t.Errorf("mean reservoir CN = %.1f over %d trials, want ≈%d", mean, trials, cn)
	}
}

func TestReservoirEstimatesNonNegativeFinite(t *testing.T) {
	r, _ := NewReservoir(64, 13)
	for _, e := range randomEdges(100, 3000, 14) {
		r.ProcessEdge(e)
	}
	x := rng.NewXoshiro256(15)
	for i := 0; i < 300; i++ {
		u, v := uint64(x.Intn(100)), uint64(x.Intn(100))
		j := r.EstimateJaccard(u, v)
		cn := r.EstimateCommonNeighbors(u, v)
		aa := r.EstimateAdamicAdar(u, v)
		if j < 0 || j > 1 || math.IsNaN(j) {
			t.Fatalf("J(%d,%d) = %v out of range", u, v, j)
		}
		if cn < 0 || math.IsNaN(cn) || math.IsInf(cn, 0) {
			t.Fatalf("CN(%d,%d) = %v invalid", u, v, cn)
		}
		if aa < 0 || math.IsNaN(aa) || math.IsInf(aa, 0) {
			t.Fatalf("AA(%d,%d) = %v invalid", u, v, aa)
		}
	}
}

func TestReservoirMemoryAccounting(t *testing.T) {
	r, _ := NewReservoir(50, 17)
	before := r.MemoryBytes()
	for _, e := range randomEdges(200, 2000, 18) {
		r.ProcessEdge(e)
	}
	after := r.MemoryBytes()
	if after <= before {
		t.Errorf("memory accounting did not grow: %d → %d", before, after)
	}
	// The dedup fingerprint set must be accounted for: memory should
	// exceed the bare reservoir payload.
	if after < 32*int(r.DistinctSeen()) {
		t.Errorf("memory %d does not cover fingerprint set of %d edges", after, r.DistinctSeen())
	}
}

func TestSketchStoreSatisfiesSystemBehaviour(t *testing.T) {
	// Smoke-check polymorphic use: run all three systems over one stream
	// through the System interface.
	s, err := core.NewSketchStore(core.Config{K: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewReservoir(500, 2)
	systems := []System{NewExact(), r, s}
	for _, e := range randomEdges(80, 1500, 19) {
		for _, sys := range systems {
			sys.ProcessEdge(e)
		}
	}
	for _, sys := range systems {
		if sys.MemoryBytes() <= 0 {
			t.Errorf("%T reports non-positive memory", sys)
		}
		if j := sys.EstimateJaccard(1, 2); j < 0 || j > 1 {
			t.Errorf("%T Jaccard out of range: %v", sys, j)
		}
	}
}
