package graph

import "sort"

// DiGraph is a directed graph stored as out- and in-adjacency sets. It
// is the exact substrate for directed link prediction (follows,
// citations, payments), mirroring Graph for the undirected case.
// Duplicate arcs and self-loops are ignored.
type DiGraph struct {
	out      map[uint64]map[uint64]struct{}
	in       map[uint64]map[uint64]struct{}
	arcCount int
}

// NewDi returns an empty directed graph.
func NewDi() *DiGraph {
	return &DiGraph{
		out: make(map[uint64]map[uint64]struct{}),
		in:  make(map[uint64]map[uint64]struct{}),
	}
}

// AddArc inserts the arc u → v, reporting whether it was new (false for
// duplicates and self-loops).
func (g *DiGraph) AddArc(u, v uint64) bool {
	if u == v {
		return false
	}
	if _, ok := g.out[u][v]; ok {
		return false
	}
	set := g.out[u]
	if set == nil {
		set = make(map[uint64]struct{})
		g.out[u] = set
	}
	set[v] = struct{}{}
	set = g.in[v]
	if set == nil {
		set = make(map[uint64]struct{})
		g.in[v] = set
	}
	set[u] = struct{}{}
	g.arcCount++
	return true
}

// HasArc reports whether u → v is present.
func (g *DiGraph) HasArc(u, v uint64) bool {
	_, ok := g.out[u][v]
	return ok
}

// OutDegree returns |N_out(u)|.
func (g *DiGraph) OutDegree(u uint64) int { return len(g.out[u]) }

// InDegree returns |N_in(u)|.
func (g *DiGraph) InDegree(u uint64) int { return len(g.in[u]) }

// TotalDegree returns |N_out(u)| + |N_in(u)|.
func (g *DiGraph) TotalDegree(u uint64) int { return len(g.out[u]) + len(g.in[u]) }

// NumArcs returns the number of distinct arcs.
func (g *DiGraph) NumArcs() int { return g.arcCount }

// NumVertices returns the number of vertices with at least one incident
// arc (either direction).
func (g *DiGraph) NumVertices() int {
	seen := make(map[uint64]struct{}, len(g.out)+len(g.in))
	for u := range g.out {
		seen[u] = struct{}{}
	}
	for u := range g.in {
		seen[u] = struct{}{}
	}
	return len(seen)
}

// OutNeighbors calls fn for each v with u → v, stopping early if fn
// returns false.
func (g *DiGraph) OutNeighbors(u uint64, fn func(v uint64) bool) {
	for v := range g.out[u] {
		if !fn(v) {
			return
		}
	}
}

// InNeighbors calls fn for each w with w → u, stopping early if fn
// returns false.
func (g *DiGraph) InNeighbors(u uint64, fn func(w uint64) bool) {
	for w := range g.in[u] {
		if !fn(w) {
			return
		}
	}
}

// ThroughNeighbors returns, sorted, the vertices w forming a directed
// two-path u → w → v — the directed analogue of common neighbors for
// scoring the candidate arc u → v.
func (g *DiGraph) ThroughNeighbors(u, v uint64) []uint64 {
	a, b := g.out[u], g.in[v]
	if len(a) > len(b) {
		// Intersect over the smaller set; membership test on the larger.
		var out []uint64
		for w := range b {
			if _, ok := a[w]; ok {
				out = append(out, w)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	var out []uint64
	for w := range a {
		if _, ok := b[w]; ok {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountThrough returns |N_out(u) ∩ N_in(v)| without materialising it.
func (g *DiGraph) CountThrough(u, v uint64) int {
	a, b := g.out[u], g.in[v]
	if len(a) > len(b) {
		n := 0
		for w := range b {
			if _, ok := a[w]; ok {
				n++
			}
		}
		return n
	}
	n := 0
	for w := range a {
		if _, ok := b[w]; ok {
			n++
		}
	}
	return n
}
