package graph

import (
	"testing"
	"testing/quick"

	"linkpred/internal/rng"
)

func TestDiGraphBasics(t *testing.T) {
	g := NewDi()
	if !g.AddArc(1, 2) {
		t.Error("first AddArc should be new")
	}
	if g.AddArc(1, 2) {
		t.Error("duplicate arc should not be new")
	}
	if !g.AddArc(2, 1) {
		t.Error("reverse arc is distinct and should be new")
	}
	if g.AddArc(3, 3) {
		t.Error("self-loop should be ignored")
	}
	if g.NumArcs() != 2 {
		t.Errorf("NumArcs = %d, want 2", g.NumArcs())
	}
	if g.NumVertices() != 2 {
		t.Errorf("NumVertices = %d, want 2", g.NumVertices())
	}
}

func TestDiGraphHasArcDirectional(t *testing.T) {
	g := NewDi()
	g.AddArc(5, 7)
	if !g.HasArc(5, 7) {
		t.Error("arc missing")
	}
	if g.HasArc(7, 5) {
		t.Error("reverse arc should not exist")
	}
}

func TestDiGraphDegrees(t *testing.T) {
	g := NewDi()
	g.AddArc(1, 2)
	g.AddArc(1, 3)
	g.AddArc(4, 1)
	if g.OutDegree(1) != 2 || g.InDegree(1) != 1 || g.TotalDegree(1) != 3 {
		t.Errorf("degrees of 1 = %d/%d/%d, want 2/1/3",
			g.OutDegree(1), g.InDegree(1), g.TotalDegree(1))
	}
	if g.OutDegree(99) != 0 || g.InDegree(99) != 0 {
		t.Error("unknown vertex degrees should be 0")
	}
}

func TestDiGraphNeighborsIteration(t *testing.T) {
	g := NewDi()
	g.AddArc(1, 2)
	g.AddArc(1, 3)
	g.AddArc(4, 1)
	outs := map[uint64]bool{}
	g.OutNeighbors(1, func(v uint64) bool { outs[v] = true; return true })
	if len(outs) != 2 || !outs[2] || !outs[3] {
		t.Errorf("OutNeighbors(1) = %v", outs)
	}
	ins := map[uint64]bool{}
	g.InNeighbors(1, func(w uint64) bool { ins[w] = true; return true })
	if len(ins) != 1 || !ins[4] {
		t.Errorf("InNeighbors(1) = %v", ins)
	}
	// Early stop.
	calls := 0
	g.OutNeighbors(1, func(v uint64) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop visited %d, want 1", calls)
	}
}

func TestThroughNeighbors(t *testing.T) {
	g := NewDi()
	// Two-paths 1→10→2 and 1→11→2; distractors 1→12, 13→2.
	g.AddArc(1, 10)
	g.AddArc(10, 2)
	g.AddArc(1, 11)
	g.AddArc(11, 2)
	g.AddArc(1, 12)
	g.AddArc(13, 2)
	got := g.ThroughNeighbors(1, 2)
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Errorf("ThroughNeighbors(1,2) = %v, want [10 11]", got)
	}
	if g.CountThrough(1, 2) != 2 {
		t.Errorf("CountThrough = %d, want 2", g.CountThrough(1, 2))
	}
	// Directionality: no w with 2→w→1.
	if g.CountThrough(2, 1) != 0 {
		t.Errorf("CountThrough(2,1) = %d, want 0", g.CountThrough(2, 1))
	}
}

func TestThroughNeighborsBothBranches(t *testing.T) {
	// Exercise both the |out| <= |in| and |out| > |in| intersection
	// branches against a brute-force check.
	x := rng.NewXoshiro256(3)
	g := NewDi()
	for i := 0; i < 3000; i++ {
		u := uint64(x.Intn(100))
		v := uint64(x.Intn(100))
		g.AddArc(u, v)
	}
	for i := 0; i < 200; i++ {
		u, v := uint64(x.Intn(100)), uint64(x.Intn(100))
		want := 0
		g.OutNeighbors(u, func(w uint64) bool {
			if g.HasArc(w, v) {
				want++
			}
			return true
		})
		if got := g.CountThrough(u, v); got != want {
			t.Fatalf("CountThrough(%d,%d) = %d, brute force %d", u, v, got, want)
		}
		if got := len(g.ThroughNeighbors(u, v)); got != want {
			t.Fatalf("ThroughNeighbors(%d,%d) has %d, brute force %d", u, v, got, want)
		}
	}
}

func TestDiGraphDegreeSumInvariant(t *testing.T) {
	// Σ out-degree = Σ in-degree = #arcs.
	if err := quick.Check(func(seed uint64) bool {
		x := rng.NewXoshiro256(seed)
		g := NewDi()
		for i := 0; i < 300; i++ {
			g.AddArc(uint64(x.Intn(60)), uint64(x.Intn(60)))
		}
		outSum, inSum := 0, 0
		for u := uint64(0); u < 60; u++ {
			outSum += g.OutDegree(u)
			inSum += g.InDegree(u)
		}
		return outSum == g.NumArcs() && inSum == g.NumArcs()
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
