// Package graph provides an exact in-memory adjacency-set graph.
//
// It is the reference substrate of the repository: the exact
// link-prediction baseline (internal/exact, internal/baseline) computes
// ground-truth Jaccard / common-neighbor / Adamic–Adar values from it, and
// the evaluation harness compares every sketch estimate against those
// values. It stores the full neighbor set of every vertex, so its memory
// grows with the number of distinct edges — exactly the cost the paper's
// sketches avoid.
//
// Vertices are opaque uint64 identifiers; they do not need to be dense or
// pre-declared. Edges are deduplicated (the neighbor sets are sets) and
// self-loops are ignored, matching the semantics of the streaming
// sketches.
package graph

import "sort"

// Graph is an undirected graph stored as adjacency sets.
// The zero value is not usable; call New.
type Graph struct {
	adj       map[uint64]map[uint64]struct{}
	edgeCount int
}

// New returns an empty undirected graph.
func New() *Graph {
	return &Graph{adj: make(map[uint64]map[uint64]struct{})}
}

// AddEdge inserts the undirected edge {u, v}. It reports whether the edge
// was new (false for duplicates and self-loops, which are ignored).
func (g *Graph) AddEdge(u, v uint64) bool {
	if u == v {
		return false
	}
	if _, ok := g.adj[u][v]; ok {
		return false
	}
	g.link(u, v)
	g.link(v, u)
	g.edgeCount++
	return true
}

func (g *Graph) link(u, v uint64) {
	set := g.adj[u]
	if set == nil {
		set = make(map[uint64]struct{})
		g.adj[u] = set
	}
	set[v] = struct{}{}
}

// RemoveEdge deletes the undirected edge {u, v}, reporting whether it was
// present. Vertices left with no incident edges are dropped from the
// vertex set.
func (g *Graph) RemoveEdge(u, v uint64) bool {
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	if len(g.adj[u]) == 0 {
		delete(g.adj, u)
	}
	if len(g.adj[v]) == 0 {
		delete(g.adj, v)
	}
	g.edgeCount--
	return true
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v uint64) bool {
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of distinct neighbors of u (0 if u is
// unknown).
func (g *Graph) Degree(u uint64) int { return len(g.adj[u]) }

// NumVertices returns the number of vertices with at least one incident
// edge.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of distinct undirected edges.
func (g *Graph) NumEdges() int { return g.edgeCount }

// Neighbors calls fn for each neighbor of u in unspecified order, stopping
// early if fn returns false.
func (g *Graph) Neighbors(u uint64, fn func(v uint64) bool) {
	for v := range g.adj[u] {
		if !fn(v) {
			return
		}
	}
}

// NeighborSlice returns the neighbors of u as a sorted slice. Sorting
// makes the output deterministic for tests and ground-truth dumps; callers
// on hot paths should prefer Neighbors.
func (g *Graph) NeighborSlice(u uint64) []uint64 {
	set := g.adj[u]
	if len(set) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Vertices calls fn for each vertex with at least one incident edge, in
// unspecified order, stopping early if fn returns false.
func (g *Graph) Vertices(fn func(u uint64) bool) {
	for u := range g.adj {
		if !fn(u) {
			return
		}
	}
}

// VertexSlice returns all vertices as a sorted slice.
func (g *Graph) VertexSlice() []uint64 {
	out := make([]uint64, 0, len(g.adj))
	for u := range g.adj {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CommonNeighbors returns the number of common neighbors of u and v,
// iterating over the smaller neighbor set.
func (g *Graph) CommonNeighbors(u, v uint64) int {
	a, b := g.adj[u], g.adj[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for w := range a {
		if _, ok := b[w]; ok {
			n++
		}
	}
	return n
}

// CommonNeighborSlice returns the common neighbors of u and v as a sorted
// slice.
func (g *Graph) CommonNeighborSlice(u, v uint64) []uint64 {
	a, b := g.adj[u], g.adj[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []uint64
	for w := range a {
		if _, ok := b[w]; ok {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TwoHopNeighbors returns the set of vertices exactly reachable within two
// hops of u, excluding u itself and u's direct neighbors — i.e. the
// standard candidate set for link prediction (vertices sharing at least
// one common neighbor with u but not yet linked). The result is sorted.
func (g *Graph) TwoHopNeighbors(u uint64) []uint64 {
	direct := g.adj[u]
	seen := make(map[uint64]struct{})
	for v := range direct {
		for w := range g.adj[v] {
			if w == u {
				continue
			}
			if _, ok := direct[w]; ok {
				continue
			}
			seen[w] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clustering returns the local clustering coefficient of u: the fraction
// of pairs of u's neighbors that are themselves linked. It returns 0 for
// vertices of degree < 2.
func (g *Graph) Clustering(u uint64) float64 {
	nbrs := g.adj[u]
	d := len(nbrs)
	if d < 2 {
		return 0
	}
	links := 0
	for v := range nbrs {
		for w := range nbrs {
			if v < w && g.HasEdge(v, w) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(d*(d-1))
}

// Triangles returns the exact number of triangles in the graph: the sum
// over edges {u, v} of |N(u) ∩ N(v)|, divided by 3 (each triangle is
// counted once per edge).
func (g *Graph) Triangles() int64 {
	var sum int64
	for u, nbrs := range g.adj {
		for v := range nbrs {
			if u < v {
				sum += int64(g.CommonNeighbors(u, v))
			}
		}
	}
	return sum / 3
}

// MemoryBytes returns an estimate of the resident size of the adjacency
// structure in bytes. It counts map headers, buckets and entries with the
// standard rough per-entry overhead of Go maps (~48 bytes per uint64→set
// entry plus ~16 bytes per neighbor entry). The estimate is used by the
// E8 memory-footprint experiment to compare against the sketches' exact
// accounting; it needs to be proportionally right, not byte-exact.
func (g *Graph) MemoryBytes() int {
	const (
		vertexOverhead   = 48 // outer map entry + inner map header
		neighborOverhead = 16 // inner map entry for one uint64 key
	)
	total := vertexOverhead * len(g.adj)
	for _, set := range g.adj {
		total += neighborOverhead * len(set)
	}
	return total
}
