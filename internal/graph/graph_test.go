package graph

import (
	"testing"
	"testing/quick"

	"linkpred/internal/rng"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New()
	if !g.AddEdge(1, 2) {
		t.Error("first AddEdge(1,2) should be new")
	}
	if g.AddEdge(1, 2) {
		t.Error("duplicate AddEdge(1,2) should not be new")
	}
	if g.AddEdge(2, 1) {
		t.Error("reversed duplicate AddEdge(2,1) should not be new")
	}
	if g.AddEdge(3, 3) {
		t.Error("self-loop should be ignored")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.NumVertices() != 2 {
		t.Errorf("NumVertices = %d, want 2", g.NumVertices())
	}
}

func TestHasEdgeSymmetric(t *testing.T) {
	g := New()
	g.AddEdge(7, 9)
	if !g.HasEdge(7, 9) || !g.HasEdge(9, 7) {
		t.Error("undirected edge must be visible from both ends")
	}
	if g.HasEdge(7, 8) {
		t.Error("absent edge reported present")
	}
}

func TestDegree(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(1, 2) // duplicate
	if g.Degree(1) != 3 {
		t.Errorf("Degree(1) = %d, want 3", g.Degree(1))
	}
	if g.Degree(2) != 1 {
		t.Errorf("Degree(2) = %d, want 1", g.Degree(2))
	}
	if g.Degree(99) != 0 {
		t.Errorf("Degree(unknown) = %d, want 0", g.Degree(99))
	}
}

func TestNeighborSliceSorted(t *testing.T) {
	g := New()
	for _, v := range []uint64{5, 2, 9, 1} {
		g.AddEdge(0, v)
	}
	got := g.NeighborSlice(0)
	want := []uint64{1, 2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("NeighborSlice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NeighborSlice = %v, want %v", got, want)
		}
	}
	if g.NeighborSlice(12345) != nil {
		t.Error("NeighborSlice of unknown vertex should be nil")
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	g := New()
	for v := uint64(1); v <= 10; v++ {
		g.AddEdge(0, v)
	}
	calls := 0
	g.Neighbors(0, func(v uint64) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop visited %d neighbors, want 3", calls)
	}
}

func TestVerticesEarlyStop(t *testing.T) {
	g := New()
	for v := uint64(1); v <= 10; v++ {
		g.AddEdge(v, v+100)
	}
	calls := 0
	g.Vertices(func(u uint64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop visited %d vertices, want 1", calls)
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := New()
	// N(1) = {2,3,4}, N(5) = {3,4,6} → CN = {3,4}
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(5, 3)
	g.AddEdge(5, 4)
	g.AddEdge(5, 6)
	if got := g.CommonNeighbors(1, 5); got != 2 {
		t.Errorf("CommonNeighbors = %d, want 2", got)
	}
	cs := g.CommonNeighborSlice(1, 5)
	if len(cs) != 2 || cs[0] != 3 || cs[1] != 4 {
		t.Errorf("CommonNeighborSlice = %v, want [3 4]", cs)
	}
	if g.CommonNeighbors(1, 99) != 0 {
		t.Error("CN with unknown vertex should be 0")
	}
}

func TestCommonNeighborsSymmetric(t *testing.T) {
	g := buildRandom(t, 500, 2000, 31)
	x := rng.NewXoshiro256(7)
	for i := 0; i < 200; i++ {
		u := uint64(x.Intn(500))
		v := uint64(x.Intn(500))
		if g.CommonNeighbors(u, v) != g.CommonNeighbors(v, u) {
			t.Fatalf("CN(%d,%d) asymmetric", u, v)
		}
	}
}

func TestTwoHopNeighbors(t *testing.T) {
	g := New()
	// Path 1-2-3-4: two-hop of 1 is {3} (4 is three hops away).
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	got := g.TwoHopNeighbors(1)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("TwoHopNeighbors(1) = %v, want [3]", got)
	}
	// Triangle 1-2-3: 3 is a direct neighbor of 1, so excluded.
	g.AddEdge(1, 3)
	if got := g.TwoHopNeighbors(1); len(got) != 1 || got[0] != 4 {
		// now 4 is two hops from 1 via 3
		t.Errorf("TwoHopNeighbors(1) after closing triangle = %v, want [4]", got)
	}
}

func TestTwoHopExcludesSelfAndDirect(t *testing.T) {
	g := buildRandom(t, 200, 800, 17)
	g.Vertices(func(u uint64) bool {
		direct := make(map[uint64]bool)
		g.Neighbors(u, func(v uint64) bool { direct[v] = true; return true })
		for _, w := range g.TwoHopNeighbors(u) {
			if w == u {
				t.Fatalf("TwoHop(%d) contains self", u)
			}
			if direct[w] {
				t.Fatalf("TwoHop(%d) contains direct neighbor %d", u, w)
			}
			if g.CommonNeighbors(u, w) == 0 {
				t.Fatalf("TwoHop(%d) contains %d with no common neighbor", u, w)
			}
		}
		return true
	})
}

func TestClustering(t *testing.T) {
	g := New()
	// Triangle: clustering of every vertex is 1.
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	if got := g.Clustering(1); got != 1 {
		t.Errorf("triangle clustering = %v, want 1", got)
	}
	// Star center: no neighbor links → 0.
	s := New()
	s.AddEdge(0, 1)
	s.AddEdge(0, 2)
	s.AddEdge(0, 3)
	if got := s.Clustering(0); got != 0 {
		t.Errorf("star clustering = %v, want 0", got)
	}
	if got := s.Clustering(1); got != 0 {
		t.Errorf("degree-1 clustering = %v, want 0", got)
	}
}

func TestVertexSliceSortedComplete(t *testing.T) {
	g := New()
	g.AddEdge(30, 10)
	g.AddEdge(20, 10)
	vs := g.VertexSlice()
	want := []uint64{10, 20, 30}
	if len(vs) != 3 {
		t.Fatalf("VertexSlice = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("VertexSlice = %v, want %v", vs, want)
		}
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	g := New()
	prev := g.MemoryBytes()
	for i := uint64(0); i < 100; i++ {
		g.AddEdge(i, i+1)
		if m := g.MemoryBytes(); m <= prev {
			t.Fatalf("MemoryBytes did not grow after edge %d", i)
		} else {
			prev = m
		}
	}
}

// TestDegreeSumInvariant checks the handshake lemma: the sum of degrees is
// twice the number of edges, for random graphs of any shape.
func TestDegreeSumInvariant(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		g := buildRandom(t, 100, 300, seed)
		sum := 0
		g.Vertices(func(u uint64) bool {
			sum += g.Degree(u)
			return true
		})
		return sum == 2*g.NumEdges()
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func buildRandom(t *testing.T, n, m int, seed uint64) *Graph {
	t.Helper()
	x := rng.NewXoshiro256(seed)
	g := New()
	for i := 0; i < m; i++ {
		g.AddEdge(uint64(x.Intn(n)), uint64(x.Intn(n)))
	}
	return g
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !g.RemoveEdge(2, 1) {
		t.Error("RemoveEdge of present edge should report true")
	}
	if g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("edge still present after removal")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.NumVertices() != 2 {
		t.Errorf("NumVertices = %d, want 2 (vertex 1 dropped)", g.NumVertices())
	}
	if g.RemoveEdge(1, 2) {
		t.Error("double removal should report false")
	}
	if g.RemoveEdge(8, 9) {
		t.Error("removal of unknown edge should report false")
	}
}

func TestAddRemoveRoundTrip(t *testing.T) {
	g := buildRandom(t, 50, 400, 77)
	edges := [][2]uint64{}
	g.Vertices(func(u uint64) bool {
		g.Neighbors(u, func(v uint64) bool {
			if u < v {
				edges = append(edges, [2]uint64{u, v})
			}
			return true
		})
		return true
	})
	for _, e := range edges {
		if !g.RemoveEdge(e[0], e[1]) {
			t.Fatalf("RemoveEdge(%d, %d) failed", e[0], e[1])
		}
	}
	if g.NumEdges() != 0 || g.NumVertices() != 0 {
		t.Errorf("graph not empty after removing all edges: %d edges, %d vertices",
			g.NumEdges(), g.NumVertices())
	}
}
