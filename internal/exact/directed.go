package exact

import (
	"math"

	"linkpred/internal/graph"
)

// Directed link-prediction measures for a candidate arc u → v. The
// directed analogue of the common neighborhood is the set of two-path
// midpoints {w : u → w → v} = N_out(u) ∩ N_in(v); each undirected
// measure carries over with N(u) ↦ N_out(u) and N(v) ↦ N_in(v).

// DirectedCommonNeighbors returns |N_out(u) ∩ N_in(v)|.
func DirectedCommonNeighbors(g *graph.DiGraph, u, v uint64) float64 {
	return float64(g.CountThrough(u, v))
}

// DirectedJaccard returns
// |N_out(u) ∩ N_in(v)| / |N_out(u) ∪ N_in(v)|, or 0 when the union is
// empty.
func DirectedJaccard(g *graph.DiGraph, u, v uint64) float64 {
	cn := g.CountThrough(u, v)
	union := g.OutDegree(u) + g.InDegree(v) - cn
	if union == 0 {
		return 0
	}
	return float64(cn) / float64(union)
}

// DirectedAdamicAdar returns Σ_{w ∈ N_out(u) ∩ N_in(v)} 1/ln d(w), with
// d(w) the total (in+out) degree of the midpoint. A midpoint of a
// two-path u → w → v has total degree >= 2, so every term is finite;
// degenerate cases (degree < 2, possible only for malformed queries) are
// skipped.
func DirectedAdamicAdar(g *graph.DiGraph, u, v uint64) float64 {
	sum := 0.0
	for _, w := range g.ThroughNeighbors(u, v) {
		if d := g.TotalDegree(w); d >= 2 {
			sum += 1 / math.Log(float64(d))
		}
	}
	return sum
}
