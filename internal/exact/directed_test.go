package exact

import (
	"math"
	"testing"

	"linkpred/internal/graph"
	"linkpred/internal/rng"
)

// diFixture: two-paths 1→10→2 and 1→11→2; degrees d(10)=d(11)=2.
func diFixture() *graph.DiGraph {
	g := graph.NewDi()
	g.AddArc(1, 10)
	g.AddArc(10, 2)
	g.AddArc(1, 11)
	g.AddArc(11, 2)
	g.AddArc(1, 12) // distractor out-neighbor
	g.AddArc(13, 2) // distractor in-neighbor
	return g
}

func TestDirectedCommonNeighbors(t *testing.T) {
	g := diFixture()
	if got := DirectedCommonNeighbors(g, 1, 2); got != 2 {
		t.Errorf("DCN(1→2) = %v, want 2", got)
	}
	if got := DirectedCommonNeighbors(g, 2, 1); got != 0 {
		t.Errorf("DCN(2→1) = %v, want 0", got)
	}
}

func TestDirectedJaccard(t *testing.T) {
	g := diFixture()
	// |∩| = 2, |N_out(1) ∪ N_in(2)| = 3 + 3 − 2 = 4.
	if got := DirectedJaccard(g, 1, 2); got != 0.5 {
		t.Errorf("DJ(1→2) = %v, want 0.5", got)
	}
	if got := DirectedJaccard(g, 50, 60); got != 0 {
		t.Errorf("DJ of unknown vertices = %v, want 0", got)
	}
}

func TestDirectedAdamicAdar(t *testing.T) {
	g := diFixture()
	want := 2 / math.Log(2) // midpoints 10, 11, total degree 2 each
	if got := DirectedAdamicAdar(g, 1, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("DAA(1→2) = %v, want %v", got, want)
	}
	if got := DirectedAdamicAdar(g, 2, 1); got != 0 {
		t.Errorf("DAA(2→1) = %v, want 0", got)
	}
}

func TestDirectedMeasuresFiniteAndNonNegative(t *testing.T) {
	x := rng.NewXoshiro256(5)
	g := graph.NewDi()
	for i := 0; i < 4000; i++ {
		g.AddArc(uint64(x.Intn(150)), uint64(x.Intn(150)))
	}
	for i := 0; i < 500; i++ {
		u, v := uint64(x.Intn(150)), uint64(x.Intn(150))
		j := DirectedJaccard(g, u, v)
		cn := DirectedCommonNeighbors(g, u, v)
		aa := DirectedAdamicAdar(g, u, v)
		if j < 0 || j > 1 || math.IsNaN(j) {
			t.Fatalf("DJ(%d→%d) = %v invalid", u, v, j)
		}
		if cn < 0 || aa < 0 || math.IsNaN(aa) || math.IsInf(aa, 0) {
			t.Fatalf("(%d→%d): cn=%v aa=%v invalid", u, v, cn, aa)
		}
		// AA <= CN / ln 2 (midpoint degree >= 2).
		if aa > cn/math.Ln2+1e-9 {
			t.Fatalf("DAA(%d→%d)=%v exceeds CN/ln2=%v", u, v, aa, cn/math.Ln2)
		}
	}
}
