// Package exact computes the neighborhood-based link-prediction measures
// — Jaccard coefficient, common neighbors, Adamic–Adar, resource
// allocation, preferential attachment — exactly, from a fully
// materialised graph.
//
// It serves two roles: it is the ground truth every sketch estimate is
// evaluated against, and (wrapped by internal/baseline) it is the
// "keep-the-whole-graph-in-memory" comparison system whose cost the
// paper's sketches are designed to avoid.
package exact

import (
	"math"
	"sort"

	"linkpred/internal/graph"
)

// Jaccard returns |N(u) ∩ N(v)| / |N(u) ∪ N(v)|, or 0 when the union is
// empty (both vertices isolated or unknown).
func Jaccard(g *graph.Graph, u, v uint64) float64 {
	cn := g.CommonNeighbors(u, v)
	union := g.Degree(u) + g.Degree(v) - cn
	if union == 0 {
		return 0
	}
	return float64(cn) / float64(union)
}

// CommonNeighbors returns |N(u) ∩ N(v)| as a float64 for interface
// uniformity with the other measures.
func CommonNeighbors(g *graph.Graph, u, v uint64) float64 {
	return float64(g.CommonNeighbors(u, v))
}

// AdamicAdar returns Σ_{w ∈ N(u)∩N(v)} 1/ln d(w). For u ≠ v every common
// neighbor w is adjacent to both, so d(w) >= 2 and each term is finite.
// The only way to see d(w) = 1 is the degenerate query u == v; such terms
// (1/ln 1 = ∞) are skipped so the function is total.
func AdamicAdar(g *graph.Graph, u, v uint64) float64 {
	sum := 0.0
	for _, w := range g.CommonNeighborSlice(u, v) {
		if d := g.Degree(w); d >= 2 {
			sum += 1 / math.Log(float64(d))
		}
	}
	return sum
}

// ResourceAllocation returns Σ_{w ∈ N(u)∩N(v)} 1/d(w), the resource
// allocation index of Zhou et al. — a heavier down-weighting of
// high-degree common neighbors than Adamic–Adar.
func ResourceAllocation(g *graph.Graph, u, v uint64) float64 {
	sum := 0.0
	for _, w := range g.CommonNeighborSlice(u, v) {
		sum += 1 / float64(g.Degree(w))
	}
	return sum
}

// PreferentialAttachment returns d(u) · d(v), the preferential-attachment
// score.
func PreferentialAttachment(g *graph.Graph, u, v uint64) float64 {
	return float64(g.Degree(u)) * float64(g.Degree(v))
}

// Cosine returns the cosine (Salton) similarity
// |N(u) ∩ N(v)| / sqrt(d(u)·d(v)), or 0 when either vertex is isolated
// or unknown.
func Cosine(g *graph.Graph, u, v uint64) float64 {
	du, dv := g.Degree(u), g.Degree(v)
	if du == 0 || dv == 0 {
		return 0
	}
	return float64(g.CommonNeighbors(u, v)) / math.Sqrt(float64(du)*float64(dv))
}

// Measure identifies one of the link-prediction target measures.
type Measure int

const (
	// MeasureJaccard is the Jaccard coefficient.
	MeasureJaccard Measure = iota
	// MeasureCommonNeighbors is the common-neighbor count.
	MeasureCommonNeighbors
	// MeasureAdamicAdar is the Adamic–Adar index.
	MeasureAdamicAdar
	// MeasureResourceAllocation is the resource-allocation index.
	MeasureResourceAllocation
	// MeasurePreferentialAttachment is the preferential-attachment score.
	MeasurePreferentialAttachment
	// MeasureCosine is the cosine (Salton) similarity.
	MeasureCosine
)

// String returns the measure's conventional short name.
func (m Measure) String() string {
	switch m {
	case MeasureJaccard:
		return "jaccard"
	case MeasureCommonNeighbors:
		return "common-neighbors"
	case MeasureAdamicAdar:
		return "adamic-adar"
	case MeasureResourceAllocation:
		return "resource-allocation"
	case MeasurePreferentialAttachment:
		return "preferential-attachment"
	case MeasureCosine:
		return "cosine"
	default:
		return "unknown"
	}
}

// Score computes the given measure for (u, v) on g.
func Score(g *graph.Graph, m Measure, u, v uint64) float64 {
	switch m {
	case MeasureJaccard:
		return Jaccard(g, u, v)
	case MeasureCommonNeighbors:
		return CommonNeighbors(g, u, v)
	case MeasureAdamicAdar:
		return AdamicAdar(g, u, v)
	case MeasureResourceAllocation:
		return ResourceAllocation(g, u, v)
	case MeasurePreferentialAttachment:
		return PreferentialAttachment(g, u, v)
	case MeasureCosine:
		return Cosine(g, u, v)
	default:
		return math.NaN()
	}
}

// Scored pairs a candidate vertex with its score.
type Scored struct {
	V     uint64
	Score float64
}

// TopK returns the k highest-scoring candidate partners for u under the
// given measure, considering the standard two-hop candidate set (vertices
// sharing at least one common neighbor with u, not already linked).
// Ties break toward the smaller vertex id so results are deterministic.
func TopK(g *graph.Graph, m Measure, u uint64, k int) []Scored {
	if k <= 0 {
		return nil
	}
	cands := g.TwoHopNeighbors(u)
	scored := make([]Scored, 0, len(cands))
	for _, v := range cands {
		scored = append(scored, Scored{V: v, Score: Score(g, m, u, v)})
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].V < scored[j].V
	})
	if len(scored) > k {
		scored = scored[:k]
	}
	return scored
}
