package exact

import (
	"math"
	"testing"

	"linkpred/internal/graph"
	"linkpred/internal/rng"
)

// fixture builds the small worked example used across the tests:
//
//	N(1) = {2, 3, 4}
//	N(5) = {3, 4, 6}
//	common neighbors of (1,5): {3, 4} with d(3) = d(4) = 2
func fixture() *graph.Graph {
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(5, 3)
	g.AddEdge(5, 4)
	g.AddEdge(5, 6)
	return g
}

func TestJaccard(t *testing.T) {
	g := fixture()
	// CN = 2, union = 3 + 3 - 2 = 4.
	if got, want := Jaccard(g, 1, 5), 0.5; got != want {
		t.Errorf("Jaccard = %v, want %v", got, want)
	}
	if got := Jaccard(g, 1, 1); got != 1 {
		t.Errorf("Jaccard(u,u) = %v, want 1", got)
	}
	if got := Jaccard(g, 100, 200); got != 0 {
		t.Errorf("Jaccard of unknown vertices = %v, want 0", got)
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := fixture()
	if got := CommonNeighbors(g, 1, 5); got != 2 {
		t.Errorf("CN = %v, want 2", got)
	}
	if got := CommonNeighbors(g, 2, 6); got != 0 {
		t.Errorf("CN of distant pair = %v, want 0", got)
	}
}

func TestAdamicAdar(t *testing.T) {
	g := fixture()
	want := 2 / math.Log(2) // two common neighbors, each of degree 2
	if got := AdamicAdar(g, 1, 5); math.Abs(got-want) > 1e-12 {
		t.Errorf("AA = %v, want %v", got, want)
	}
	if got := AdamicAdar(g, 2, 6); got != 0 {
		t.Errorf("AA of pair with no common neighbors = %v, want 0", got)
	}
}

func TestAdamicAdarFinite(t *testing.T) {
	// Common neighbors always have degree >= 2, so AA is always finite.
	g := fixture()
	g.Vertices(func(u uint64) bool {
		g.Vertices(func(v uint64) bool {
			if aa := AdamicAdar(g, u, v); math.IsInf(aa, 0) || math.IsNaN(aa) {
				t.Fatalf("AA(%d,%d) = %v not finite", u, v, aa)
			}
			return true
		})
		return true
	})
}

func TestResourceAllocation(t *testing.T) {
	g := fixture()
	if got, want := ResourceAllocation(g, 1, 5), 1.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("RA = %v, want %v", got, want) // 1/2 + 1/2
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := fixture()
	if got := PreferentialAttachment(g, 1, 5); got != 9 {
		t.Errorf("PA = %v, want 9", got)
	}
	if got := PreferentialAttachment(g, 1, 999); got != 0 {
		t.Errorf("PA with unknown vertex = %v, want 0", got)
	}
}

func TestScoreDispatch(t *testing.T) {
	g := fixture()
	cases := []struct {
		m    Measure
		want float64
	}{
		{MeasureJaccard, 0.5},
		{MeasureCommonNeighbors, 2},
		{MeasureAdamicAdar, 2 / math.Log(2)},
		{MeasureResourceAllocation, 1},
		{MeasurePreferentialAttachment, 9},
	}
	for _, c := range cases {
		if got := Score(g, c.m, 1, 5); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Score(%v) = %v, want %v", c.m, got, c.want)
		}
	}
	if !math.IsNaN(Score(g, Measure(99), 1, 5)) {
		t.Error("unknown measure should score NaN")
	}
}

func TestMeasureString(t *testing.T) {
	names := map[Measure]string{
		MeasureJaccard:                "jaccard",
		MeasureCommonNeighbors:        "common-neighbors",
		MeasureAdamicAdar:             "adamic-adar",
		MeasureResourceAllocation:     "resource-allocation",
		MeasurePreferentialAttachment: "preferential-attachment",
		Measure(42):                   "unknown",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestSymmetry(t *testing.T) {
	x := rng.NewXoshiro256(3)
	g := graph.New()
	for i := 0; i < 2000; i++ {
		g.AddEdge(uint64(x.Intn(300)), uint64(x.Intn(300)))
	}
	for _, m := range []Measure{MeasureJaccard, MeasureCommonNeighbors, MeasureAdamicAdar, MeasureResourceAllocation, MeasurePreferentialAttachment} {
		for i := 0; i < 100; i++ {
			u, v := uint64(x.Intn(300)), uint64(x.Intn(300))
			a, b := Score(g, m, u, v), Score(g, m, v, u)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("%v not symmetric at (%d,%d): %v vs %v", m, u, v, a, b)
			}
		}
	}
}

func TestMeasureOrderInvariants(t *testing.T) {
	// On any graph: J ∈ [0,1]; AA <= CN/ln 2; RA <= CN/2 (common neighbor
	// degree >= 2); CN <= min degree.
	x := rng.NewXoshiro256(5)
	g := graph.New()
	for i := 0; i < 3000; i++ {
		g.AddEdge(uint64(x.Intn(200)), uint64(x.Intn(200)))
	}
	for i := 0; i < 500; i++ {
		u, v := uint64(x.Intn(200)), uint64(x.Intn(200))
		if u == v {
			continue
		}
		j := Jaccard(g, u, v)
		cn := CommonNeighbors(g, u, v)
		aa := AdamicAdar(g, u, v)
		ra := ResourceAllocation(g, u, v)
		if j < 0 || j > 1 {
			t.Fatalf("J(%d,%d) = %v outside [0,1]", u, v, j)
		}
		if aa > cn/math.Log(2)+1e-9 {
			t.Fatalf("AA(%d,%d) = %v exceeds CN/ln2 = %v", u, v, aa, cn/math.Log(2))
		}
		if ra > cn/2+1e-9 {
			t.Fatalf("RA(%d,%d) = %v exceeds CN/2 = %v", u, v, ra, cn/2)
		}
		minDeg := float64(g.Degree(u))
		if d := float64(g.Degree(v)); d < minDeg {
			minDeg = d
		}
		if cn > minDeg {
			t.Fatalf("CN(%d,%d) = %v exceeds min degree %v", u, v, cn, minDeg)
		}
	}
}

func TestTopK(t *testing.T) {
	g := graph.New()
	// Star around 0 plus a triangle so vertex 0 has two-hop candidates.
	// 0-1, 0-2, 1-3, 2-3, 1-4: candidates of 0 are {3 (via 1,2), 4 (via 1)}.
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(1, 4)
	top := TopK(g, MeasureCommonNeighbors, 0, 10)
	if len(top) != 2 {
		t.Fatalf("TopK returned %d candidates, want 2: %v", len(top), top)
	}
	if top[0].V != 3 || top[0].Score != 2 {
		t.Errorf("best candidate = %+v, want {3 2}", top[0])
	}
	if top[1].V != 4 || top[1].Score != 1 {
		t.Errorf("second candidate = %+v, want {4 1}", top[1])
	}
	// k truncates.
	if got := TopK(g, MeasureCommonNeighbors, 0, 1); len(got) != 1 || got[0].V != 3 {
		t.Errorf("TopK(k=1) = %v", got)
	}
	if got := TopK(g, MeasureCommonNeighbors, 0, 0); got != nil {
		t.Errorf("TopK(k=0) = %v, want nil", got)
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	g := graph.New()
	// Vertex 0 with two candidates of identical score.
	g.AddEdge(0, 1)
	g.AddEdge(1, 10)
	g.AddEdge(1, 20)
	for i := 0; i < 10; i++ {
		top := TopK(g, MeasureCommonNeighbors, 0, 2)
		if len(top) != 2 || top[0].V != 10 || top[1].V != 20 {
			t.Fatalf("tie break not deterministic: %v", top)
		}
	}
}
