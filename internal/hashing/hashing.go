// Package hashing provides seeded 64-bit hash functions and hash-function
// families for the linkpred sketches.
//
// A MinHash sketch with k registers needs k hash functions that behave as
// independent random permutations of the vertex-id space. This package
// supplies them in two flavours:
//
//   - Mixed: a splitmix64-finalizer hash salted with a per-function random
//     key. One multiply-xor chain per evaluation; this is the fast path
//     used by the sketches.
//   - Tabulation: 8-way simple tabulation hashing, which is 3-independent
//     and gives Chernoff-style concentration guarantees for hashing-based
//     estimators. Used by tests to cross-validate that estimator accuracy
//     does not secretly depend on hash-function artifacts.
//
// Both are deterministic functions of (seed, input): the same seed always
// yields the same family, which keeps every experiment reproducible.
package hashing

import (
	"fmt"

	"linkpred/internal/rng"
)

// Func is a 64-bit hash function on 64-bit keys.
type Func interface {
	// Hash returns the hash of x. Implementations must be deterministic
	// and safe for concurrent use.
	Hash(x uint64) uint64
}

// Mixed is a salted splitmix64-finalizer hash. For a random 64-bit salt it
// behaves as a random member of a universal-style family: the finalizer is
// a bijection with full avalanche, so distinct salts give effectively
// independent value assignments.
type Mixed struct {
	salt uint64
}

// NewMixed returns a Mixed hash with the given salt.
func NewMixed(salt uint64) Mixed { return Mixed{salt: salt} }

// Hash implements Func.
func (m Mixed) Hash(x uint64) uint64 {
	// Two finalizer rounds with the salt injected between them. A single
	// round salted by XOR on the input is *not* enough: Mix64(x^s) and
	// Mix64(y^s) would preserve the relative order of x and y across all
	// salts for certain structured pairs. The second round breaks the
	// algebraic relation.
	return rng.Mix64(rng.Mix64(x^m.salt) + m.salt*0x9e3779b97f4a7c15)
}

// Tabulation is 8-way simple tabulation hashing over the bytes of a 64-bit
// key. Simple tabulation is 3-independent and is known (Pǎtraşcu–Thorup)
// to give Chernoff-type bounds for many hashing applications despite its
// limited formal independence.
type Tabulation struct {
	tables [8][256]uint64
}

// NewTabulation returns a Tabulation hash whose tables are filled from the
// given seed.
func NewTabulation(seed uint64) *Tabulation {
	sm := rng.NewSplitMix64(seed)
	t := &Tabulation{}
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = sm.Uint64()
		}
	}
	return t
}

// Hash implements Func.
func (t *Tabulation) Hash(x uint64) uint64 {
	return t.tables[0][byte(x)] ^
		t.tables[1][byte(x>>8)] ^
		t.tables[2][byte(x>>16)] ^
		t.tables[3][byte(x>>24)] ^
		t.tables[4][byte(x>>32)] ^
		t.tables[5][byte(x>>40)] ^
		t.tables[6][byte(x>>48)] ^
		t.tables[7][byte(x>>56)]
}

// Kind selects a hash-family construction.
type Kind int

const (
	// KindMixed selects the salted splitmix64-finalizer family (default,
	// fastest).
	KindMixed Kind = iota
	// KindTabulation selects 8-way simple tabulation (3-independent,
	// ~2 KiB of tables per function).
	KindTabulation
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindMixed:
		return "mixed"
	case KindTabulation:
		return "tabulation"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Family is an ordered collection of k hash functions expanded
// deterministically from one seed.
type Family struct {
	funcs []Func
	// salts caches the per-function salts when kind == KindMixed, enabling
	// HashAllTo's dispatch-free fast path: evaluating k Mixed functions
	// through the Func interface costs roughly 2× the raw arithmetic, and
	// the sketches evaluate the whole family on every edge endpoint.
	salts []uint64
	// saltsOdd caches salts[i]·0x9e3779b97f4a7c15 (the constant Mixed.Hash
	// injects between its two finalizer rounds) so the fast path's inner
	// loop carries one fewer multiply per register.
	saltsOdd []uint64
	kind     Kind
	seed     uint64
}

// NewFamily returns a family of k hash functions of the given kind,
// expanded from seed via splitmix64. It panics if k <= 0 (programmer
// error: a sketch without registers is meaningless).
func NewFamily(kind Kind, k int, seed uint64) *Family {
	if k <= 0 {
		panic("hashing: NewFamily called with k <= 0")
	}
	sm := rng.NewSplitMix64(seed)
	funcs := make([]Func, k)
	var salts, saltsOdd []uint64
	if kind != KindTabulation {
		salts = make([]uint64, k)
		saltsOdd = make([]uint64, k)
	}
	for i := range funcs {
		sub := sm.Uint64()
		switch kind {
		case KindTabulation:
			funcs[i] = NewTabulation(sub)
		default:
			funcs[i] = NewMixed(sub)
			salts[i] = sub
			saltsOdd[i] = sub * 0x9e3779b97f4a7c15
		}
	}
	return &Family{funcs: funcs, salts: salts, saltsOdd: saltsOdd, kind: kind, seed: seed}
}

// Size returns the number of functions in the family.
func (f *Family) Size() int { return len(f.funcs) }

// Kind returns the family's construction kind.
func (f *Family) Kind() Kind { return f.kind }

// Seed returns the seed the family was expanded from.
func (f *Family) Seed() uint64 { return f.seed }

// Hash returns h_i(x), the i-th function applied to x.
func (f *Family) Hash(i int, x uint64) uint64 { return f.funcs[i].Hash(x) }

// HashAll evaluates every function on x, appending the results to dst
// (allocating if dst lacks capacity) and returning the slice. Passing a
// reusable buffer keeps the per-edge sketch update allocation-free.
func (f *Family) HashAll(x uint64, dst []uint64) []uint64 {
	if cap(dst) < len(f.funcs) {
		dst = make([]uint64, len(f.funcs))
	}
	dst = dst[:len(f.funcs)]
	f.HashAllTo(x, dst)
	return dst
}

// HashAllTo writes h_i(x) into dst[i] for every function of the family.
// dst must have length at least Size(); HashAllTo never allocates, which
// makes it the right primitive for batch ingest where callers hash into
// slices of a preallocated arena. For the Mixed kind the evaluation runs
// over the cached salts directly, skipping the per-register interface
// dispatch of HashAll's general path.
func (f *Family) HashAllTo(x uint64, dst []uint64) {
	if f.salts != nil {
		dst = dst[:len(f.salts)]
		saltsOdd := f.saltsOdd[:len(f.salts)]
		for i, s := range f.salts {
			// Inlined Mixed.Hash: two finalizer rounds with the salt injected
			// between them (see Mixed.Hash for why one round is not enough).
			// saltsOdd caches s·odd so the loop carries one multiply less.
			dst[i] = rng.Mix64(rng.Mix64(x^s) + saltsOdd[i])
		}
		return
	}
	for i, fn := range f.funcs {
		dst[i] = fn.Hash(x)
	}
}

// Float01 maps a hash value to a uniform float64 in (0, 1]. The mapping
// uses the top 53 bits and never returns 0, so callers may take logarithms
// (weighted sampling transforms) without guarding.
func Float01(h uint64) float64 {
	return (float64(h>>11) + 1) / (1 << 53)
}
