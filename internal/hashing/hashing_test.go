package hashing

import (
	"math"
	"testing"
	"testing/quick"

	"linkpred/internal/rng"
)

func TestMixedDeterministic(t *testing.T) {
	h := NewMixed(12345)
	for i := uint64(0); i < 100; i++ {
		if h.Hash(i) != h.Hash(i) {
			t.Fatalf("Hash(%d) not deterministic", i)
		}
	}
}

func TestMixedSaltsDiffer(t *testing.T) {
	a, b := NewMixed(1), NewMixed(2)
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.Hash(i) == b.Hash(i) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("salts 1 and 2 agree on %d of 1000 inputs", same)
	}
}

func TestMixedNoCollisionsOnSequentialKeys(t *testing.T) {
	h := NewMixed(77)
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		v := h.Hash(i)
		if prev, ok := seen[v]; ok {
			t.Fatalf("collision: Hash(%d) == Hash(%d)", i, prev)
		}
		seen[v] = i
	}
}

// TestMixedMinRankUniform is the property the MinHash sketches rely on:
// over random salts, each element of a fixed set should be the argmin of
// the hash with equal probability.
func TestMixedMinRankUniform(t *testing.T) {
	const setSize = 8
	const trials = 40000
	counts := make([]int, setSize)
	sm := rng.NewSplitMix64(3)
	elems := make([]uint64, setSize)
	for i := range elems {
		elems[i] = uint64(i) * 1000 // structured, adversarial-ish keys
	}
	for trial := 0; trial < trials; trial++ {
		h := NewMixed(sm.Uint64())
		best, bestVal := 0, h.Hash(elems[0])
		for i := 1; i < setSize; i++ {
			if v := h.Hash(elems[i]); v < bestVal {
				best, bestVal = i, v
			}
		}
		counts[best]++
	}
	want := float64(trials) / setSize
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d was argmin %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestTabulationDeterministicAndSeedSensitive(t *testing.T) {
	a := NewTabulation(9)
	b := NewTabulation(9)
	c := NewTabulation(10)
	diff := 0
	for i := uint64(0); i < 1000; i++ {
		if a.Hash(i) != b.Hash(i) {
			t.Fatalf("same seed disagrees at %d", i)
		}
		if a.Hash(i) != c.Hash(i) {
			diff++
		}
	}
	if diff < 990 {
		t.Errorf("different seeds agree too often: only %d of 1000 differ", diff)
	}
}

func TestTabulationXORStructure(t *testing.T) {
	// For simple tabulation, flipping one input byte changes the output by
	// exactly the XOR of two table entries — verify via the 3-way relation
	// h(x) ^ h(x^d) is constant in the other bytes.
	h := NewTabulation(21)
	d := uint64(0xff) << 16
	want := h.Hash(0) ^ h.Hash(d)
	for i := uint64(1); i < 100; i++ {
		x := i * 0x0101010101010101 // vary all bytes
		x &^= uint64(0xff) << 16    // except the one we flip
		if got := h.Hash(x) ^ h.Hash(x^d); got != want {
			t.Fatalf("tabulation XOR structure violated at x=%#x", x)
		}
	}
}

func TestFamilyPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFamily(k=0) did not panic")
		}
	}()
	NewFamily(KindMixed, 0, 1)
}

func TestFamilyIndependentFunctions(t *testing.T) {
	f := NewFamily(KindMixed, 16, 42)
	if f.Size() != 16 {
		t.Fatalf("Size = %d, want 16", f.Size())
	}
	// Distinct functions must disagree on most inputs.
	for i := 0; i < f.Size(); i++ {
		for j := i + 1; j < f.Size(); j++ {
			same := 0
			for x := uint64(0); x < 200; x++ {
				if f.Hash(i, x) == f.Hash(j, x) {
					same++
				}
			}
			if same > 2 {
				t.Errorf("functions %d and %d agree on %d of 200 inputs", i, j, same)
			}
		}
	}
}

func TestFamilyReproducibleAcrossInstances(t *testing.T) {
	for _, kind := range []Kind{KindMixed, KindTabulation} {
		a := NewFamily(kind, 8, 123)
		b := NewFamily(kind, 8, 123)
		for i := 0; i < 8; i++ {
			for x := uint64(0); x < 50; x++ {
				if a.Hash(i, x) != b.Hash(i, x) {
					t.Fatalf("%v family not reproducible at (%d, %d)", kind, i, x)
				}
			}
		}
	}
}

func TestHashAllMatchesHash(t *testing.T) {
	f := NewFamily(KindMixed, 12, 7)
	buf := make([]uint64, 0, 12)
	if err := quick.Check(func(x uint64) bool {
		buf = f.HashAll(x, buf)
		if len(buf) != 12 {
			return false
		}
		for i, v := range buf {
			if v != f.Hash(i, x) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestHashAllToMatchesHash pins the fast path to the canonical per-index
// definition for both family kinds: the salt-loop specialization of the
// Mixed kind must be bit-identical to Mixed.Hash, or batched and
// per-edge ingest would build different sketches.
func TestHashAllToMatchesHash(t *testing.T) {
	for _, kind := range []Kind{KindMixed, KindTabulation} {
		f := NewFamily(kind, 12, 7)
		buf := make([]uint64, 12)
		if err := quick.Check(func(x uint64) bool {
			f.HashAllTo(x, buf)
			for i, v := range buf {
				if v != f.Hash(i, x) {
					return false
				}
			}
			return true
		}, nil); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

func TestHashAllToNoAlloc(t *testing.T) {
	f := NewFamily(KindMixed, 64, 7)
	buf := make([]uint64, 64)
	allocs := testing.AllocsPerRun(100, func() {
		f.HashAllTo(99, buf)
	})
	if allocs != 0 {
		t.Errorf("HashAllTo allocates %.1f per run, want 0", allocs)
	}
}

func TestHashAllNoAlloc(t *testing.T) {
	f := NewFamily(KindMixed, 64, 7)
	buf := make([]uint64, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		buf = f.HashAll(99, buf)
	})
	if allocs != 0 {
		t.Errorf("HashAll with pre-sized buffer allocates %.1f per run, want 0", allocs)
	}
}

func TestFloat01Range(t *testing.T) {
	if err := quick.Check(func(h uint64) bool {
		f := Float01(h)
		return f > 0 && f <= 1
	}, nil); err != nil {
		t.Error(err)
	}
	if Float01(0) <= 0 {
		t.Error("Float01(0) must be > 0 so callers can take logs")
	}
	if Float01(math.MaxUint64) > 1 {
		t.Error("Float01(MaxUint64) must be <= 1")
	}
}

func TestFloat01Uniform(t *testing.T) {
	h := NewMixed(5)
	const n = 100000
	sum := 0.0
	for i := uint64(0); i < n; i++ {
		sum += Float01(h.Hash(i))
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float01 over hashes = %v, want ~0.5", mean)
	}
}

func TestKindString(t *testing.T) {
	if KindMixed.String() != "mixed" || KindTabulation.String() != "tabulation" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestFamilyAccessors(t *testing.T) {
	f := NewFamily(KindTabulation, 4, 55)
	if f.Kind() != KindTabulation {
		t.Errorf("Kind() = %v", f.Kind())
	}
	if f.Seed() != 55 {
		t.Errorf("Seed() = %d", f.Seed())
	}
}

func BenchmarkMixedHash(b *testing.B) {
	h := NewMixed(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkTabulationHash(b *testing.B) {
	h := NewTabulation(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= h.Hash(uint64(i))
	}
	_ = sink
}
