// Package rng provides small, fast, deterministic pseudo-random number
// generators for the linkpred library.
//
// Every stochastic component in this repository (hash-family seeding,
// synthetic graph generation, sampling baselines, query-pair selection)
// draws its randomness from this package through an explicit 64-bit seed,
// so that every experiment, test, and example is exactly reproducible.
// Nothing in this package (or anywhere else in the library) reads the
// wall clock or the global math/rand state.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny 64-bit generator with a single word of state.
//     It is primarily used to expand one user seed into many independent
//     sub-seeds (e.g. for a family of hash functions).
//   - Xoshiro256: xoshiro256**, a high-quality general-purpose generator
//     used by the synthetic graph generators and the sampling baselines.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood.
// It has 64 bits of state, passes BigCrush, and — crucially for seeding —
// is an equidistributed bijection of the 64-bit integers, so expanding a
// seed through it never produces colliding sub-seeds for distinct inputs.
//
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x without advancing any state.
// It is a bijection on uint64 with strong avalanche behaviour and is the
// mixing core reused by package hashing.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna.
// It has 256 bits of state, a period of 2^256−1, and excellent
// statistical quality; it is the workhorse generator for the synthetic
// stream generators.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a Xoshiro256 whose state is expanded from seed
// via SplitMix64, following the initialisation recommended by the
// algorithm's authors. Any seed, including 0, yields a valid generator:
// the splitmix expansion cannot produce the all-zero state.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the sequence.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1). It uses the top 53 bits of
// a Uint64 draw, so every representable value has equal probability.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0 (programmer
// error, mirroring math/rand). Lemire's nearly-divisionless method keeps
// the draw unbiased without a modulo in the common case.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(x.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's multiply-shift rejection method.
	v := x.Uint64()
	hi, lo := bits.Mul64(v, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			v = x.Uint64()
			hi, lo = bits.Mul64(v, n)
		}
	}
	return hi
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. Used by generators that perturb structural parameters.
func (x *Xoshiro256) NormFloat64() float64 {
	for {
		u := 2*x.Float64() - 1
		v := 2*x.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (x *Xoshiro256) ExpFloat64() float64 {
	for {
		u := x.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher–Yates shuffle.
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	x.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs an in-place Fisher–Yates shuffle over n elements,
// calling swap for each exchange, mirroring math/rand.Shuffle.
func (x *Xoshiro256) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}
