package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the splitmix64 reference implementation
	// (Vigna), seed 1234567.
	s := NewSplitMix64(1234567)
	want := []uint64{
		6457827717110365317, // 0x599ed017fb08fc85
		3203168211198807973, // 0x2c73f08458540fa5
		9817491932198370423, // 0x883ebce5a3f27c77
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64DistinctSeedsDiverge(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestMix64Bijective(t *testing.T) {
	// Bijectivity can't be tested exhaustively; check no collisions over
	// a large sample of structured inputs (sequential ints are the most
	// collision-prone input for weak mixers).
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 of 64 output bits on average.
	sm := NewSplitMix64(7)
	var totalFlips, trials int
	for i := 0; i < 200; i++ {
		x := sm.Uint64()
		hx := Mix64(x)
		for b := uint(0); b < 64; b++ {
			hy := Mix64(x ^ 1<<b)
			totalFlips += popcount(hx ^ hy)
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 28 || avg > 36 {
		t.Errorf("avalanche average %.2f bits, want ~32 (28..36)", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(99)
	b := NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at draw %d", i)
		}
	}
}

func TestXoshiroZeroSeedValid(t *testing.T) {
	x := NewXoshiro256(0)
	// The all-zero state would emit zero forever; the splitmix expansion
	// must avoid it.
	allZero := true
	for i := 0; i < 10; i++ {
		if x.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(5)
	for i := 0; i < 100000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := NewXoshiro256(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	x := NewXoshiro256(7)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := x.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from expectation %.0f", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewXoshiro256(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewXoshiro256(1).Uint64n(0)
}

func TestUint64nBounds(t *testing.T) {
	x := NewXoshiro256(11)
	if err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return x.Uint64n(n) < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := NewXoshiro256(13)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := x.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	x := NewXoshiro256(17)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[x.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("first element %d appeared %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	x := NewXoshiro256(19)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := x.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	x := NewXoshiro256(23)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := x.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestShuffleSwapCoverage(t *testing.T) {
	// Shuffle must call swap exactly n-1 times with valid indices.
	x := NewXoshiro256(29)
	n := 100
	calls := 0
	x.Shuffle(n, func(i, j int) {
		if i < 0 || i >= n || j < 0 || j >= n {
			t.Fatalf("swap(%d, %d) out of range", i, j)
		}
		calls++
	})
	if calls != n-1 {
		t.Errorf("swap called %d times, want %d", calls, n-1)
	}
}
