package monitor

import (
	"fmt"
	"math"
	"sort"

	"linkpred/internal/hashing"
)

// SpaceSaving is Metwally's space-saving heavy-hitter summary: it tracks
// at most capacity keys and guarantees that any key with true count
// above N/capacity is present, with count overestimated by at most the
// minimum tracked count.
type SpaceSaving struct {
	capacity int
	counts   map[uint64]uint64
	// err[k] bounds the overcount of k (the count it inherited on entry).
	err map[uint64]uint64
}

// NewSpaceSaving returns a summary tracking at most capacity keys. It
// returns an error if capacity < 1.
func NewSpaceSaving(capacity int) (*SpaceSaving, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("monitor: SpaceSaving needs capacity >= 1, got %d", capacity)
	}
	return &SpaceSaving{
		capacity: capacity,
		counts:   make(map[uint64]uint64, capacity),
		err:      make(map[uint64]uint64, capacity),
	}, nil
}

// Add increments key's count by delta.
func (s *SpaceSaving) Add(key uint64, delta uint64) {
	if _, ok := s.counts[key]; ok {
		s.counts[key] += delta
		return
	}
	if len(s.counts) < s.capacity {
		s.counts[key] = delta
		s.err[key] = 0
		return
	}
	// Evict the minimum-count key; the newcomer inherits its count.
	var minKey uint64
	minVal := ^uint64(0)
	for k, v := range s.counts {
		if v < minVal || (v == minVal && k < minKey) {
			minKey, minVal = k, v
		}
	}
	delete(s.counts, minKey)
	delete(s.err, minKey)
	s.counts[key] = minVal + delta
	s.err[key] = minVal
}

// Entry is one tracked key with its estimated count and error bound
// (true count ∈ [Count−Err, Count]).
type Entry struct {
	Key   uint64
	Count uint64
	Err   uint64
}

// Top returns the k highest-count entries, count-descending with ties
// toward smaller keys.
func (s *SpaceSaving) Top(k int) []Entry {
	out := make([]Entry, 0, len(s.counts))
	for key, c := range s.counts {
		out = append(out, Entry{Key: key, Count: c, Err: s.err[key]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Tracked returns the number of keys currently tracked.
func (s *SpaceSaving) Tracked() int { return len(s.counts) }

// MemoryBytes returns the payload size of the summary.
func (s *SpaceSaving) MemoryBytes() int { return 48 * s.capacity }

// KMV is a k-minimum-values distinct counter over 64-bit keys: it keeps
// the k smallest hash values seen; with m_k the k-th smallest mapped to
// (0, 1], the distinct count is estimated by (k−1)/m_k.
type KMV struct {
	k    int
	hash hashing.Mixed
	vals []uint64 // sorted ascending, at most k, distinct
}

// NewKMV returns a distinct counter keeping the k smallest hashes. It
// returns an error if k < 2 (the estimator needs k−1 ≥ 1).
func NewKMV(k int, seed uint64) (*KMV, error) {
	if k < 2 {
		return nil, fmt.Errorf("monitor: KMV needs k >= 2, got %d", k)
	}
	return &KMV{k: k, hash: hashing.NewMixed(seed), vals: make([]uint64, 0, k)}, nil
}

// Add observes one key (duplicates are free by construction).
func (v *KMV) Add(key uint64) {
	h := v.hash.Hash(key)
	if len(v.vals) == v.k && h >= v.vals[len(v.vals)-1] {
		return
	}
	i := sort.Search(len(v.vals), func(i int) bool { return v.vals[i] >= h })
	if i < len(v.vals) && v.vals[i] == h {
		return // already present
	}
	v.vals = append(v.vals, 0)
	copy(v.vals[i+1:], v.vals[i:])
	v.vals[i] = h
	if len(v.vals) > v.k {
		v.vals = v.vals[:v.k]
	}
}

// Estimate returns the estimated number of distinct keys observed. While
// fewer than k distinct hashes have been seen the count is exact.
func (v *KMV) Estimate() float64 {
	if len(v.vals) < v.k {
		return float64(len(v.vals))
	}
	mk := hashing.Float01(v.vals[len(v.vals)-1])
	if mk <= 0 {
		return float64(v.k)
	}
	est := float64(v.k-1) / mk
	return math.Max(est, float64(v.k))
}

// MemoryBytes returns the payload size of the counter.
func (v *KMV) MemoryBytes() int { return 8 * v.k }
