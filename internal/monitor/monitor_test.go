package monitor

import (
	"math"
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

func TestCountMinValidation(t *testing.T) {
	if _, err := NewCountMin(0, 4, 1); err == nil {
		t.Error("width=0 should error")
	}
	if _, err := NewCountMin(16, 0, 1); err == nil {
		t.Error("depth=0 should error")
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm, _ := NewCountMin(256, 4, 7)
	truth := map[uint64]uint64{}
	x := rng.NewXoshiro256(1)
	for i := 0; i < 20000; i++ {
		k := x.Uint64() % 500
		cm.Add(k, 1)
		truth[k]++
	}
	if cm.Total() != 20000 {
		t.Errorf("Total = %d", cm.Total())
	}
	for k, want := range truth {
		if got := cm.Count(k); got < want {
			t.Fatalf("Count(%d) = %d underestimates true %d", k, got, want)
		}
	}
}

func TestCountMinErrorBounded(t *testing.T) {
	const width, n = 2048, 50000
	cm, _ := NewCountMin(width, 4, 9)
	truth := map[uint64]uint64{}
	x := rng.NewXoshiro256(2)
	for i := 0; i < n; i++ {
		k := x.Uint64() % 2000
		cm.Add(k, 1)
		truth[k]++
	}
	// Expected overcount per counter ≈ N/width ≈ 24; allow 8× slack on
	// the max over the min-of-depth estimates.
	maxOver := uint64(0)
	for k, want := range truth {
		if over := cm.Count(k) - want; over > maxOver {
			maxOver = over
		}
	}
	if maxOver > 8*n/width {
		t.Errorf("max overcount %d exceeds 8N/width = %d", maxOver, 8*n/width)
	}
}

func TestCountMinUnseenKeySmall(t *testing.T) {
	cm, _ := NewCountMin(4096, 4, 11)
	for i := uint64(0); i < 10000; i++ {
		cm.Add(i, 1)
	}
	// An unseen key's estimate is pure collision noise: small.
	if got := cm.Count(1 << 60); got > 30 {
		t.Errorf("unseen key count = %d, want near 0", got)
	}
}

func TestSpaceSavingValidation(t *testing.T) {
	if _, err := NewSpaceSaving(0); err == nil {
		t.Error("capacity=0 should error")
	}
}

func TestSpaceSavingFindsHeavyHitters(t *testing.T) {
	ss, _ := NewSpaceSaving(20)
	x := rng.NewXoshiro256(3)
	// Keys 0..4 are heavy (10k each); 5..1004 are light (~10 each).
	truth := map[uint64]uint64{}
	var events []uint64
	for k := uint64(0); k < 5; k++ {
		for i := 0; i < 10000; i++ {
			events = append(events, k)
		}
	}
	for k := uint64(5); k < 1005; k++ {
		for i := 0; i < 10; i++ {
			events = append(events, k)
		}
	}
	x.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
	for _, k := range events {
		ss.Add(k, 1)
		truth[k]++
	}
	top := ss.Top(5)
	if len(top) != 5 {
		t.Fatalf("Top(5) returned %d entries", len(top))
	}
	for _, e := range top {
		if e.Key >= 5 {
			t.Errorf("light key %d in top-5", e.Key)
		}
		// Count within error bound of truth.
		if e.Count < truth[e.Key] || e.Count-e.Err > truth[e.Key] {
			t.Errorf("key %d: est %d (err %d) vs truth %d violates guarantee",
				e.Key, e.Count, e.Err, truth[e.Key])
		}
	}
	if ss.Tracked() > 20 {
		t.Errorf("tracking %d keys, capacity 20", ss.Tracked())
	}
}

func TestSpaceSavingTopOrderDeterministic(t *testing.T) {
	mk := func() []Entry {
		ss, _ := NewSpaceSaving(8)
		x := rng.NewXoshiro256(5)
		for i := 0; i < 5000; i++ {
			ss.Add(x.Uint64()%100, 1)
		}
		return ss.Top(8)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Top not deterministic")
		}
	}
}

func TestKMVValidationAndExactness(t *testing.T) {
	if _, err := NewKMV(1, 1); err == nil {
		t.Error("k=1 should error")
	}
	v, _ := NewKMV(64, 1)
	// Below k distinct: exact, duplicates free.
	for i := uint64(0); i < 40; i++ {
		v.Add(i)
		v.Add(i)
	}
	if got := v.Estimate(); got != 40 {
		t.Errorf("under-k estimate = %v, want exactly 40", got)
	}
}

func TestKMVAccuracy(t *testing.T) {
	v, _ := NewKMV(512, 3)
	const distinct = 100000
	for i := uint64(0); i < distinct; i++ {
		v.Add(i)
		if i%3 == 0 {
			v.Add(i) // duplicates
		}
	}
	got := v.Estimate()
	if math.Abs(got-distinct)/distinct > 0.12 {
		t.Errorf("KMV estimate = %.0f, want within 12%% of %d", got, distinct)
	}
}

func TestMonitorDefaults(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.MemoryBytes() <= 0 {
		t.Error("memory accounting broken")
	}
}

func TestMonitorProfileAccuracy(t *testing.T) {
	src, err := gen.Open(gen.DatasetCoauthor, gen.ScaleSmall, 42)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New() // exact truth
	m, _ := New(Config{Seed: 7})
	for _, e := range raw {
		g.AddEdge(e.U, e.V)
		m.ProcessEdge(e)
	}
	r := m.Report(10)
	if r.Edges != int64(len(raw)) {
		t.Errorf("Edges = %d, want %d", r.Edges, len(raw))
	}
	if math.Abs(r.DistinctEdges-float64(g.NumEdges()))/float64(g.NumEdges()) > 0.10 {
		t.Errorf("DistinctEdges = %.0f, truth %d", r.DistinctEdges, g.NumEdges())
	}
	if math.Abs(r.DistinctVertices-float64(g.NumVertices()))/float64(g.NumVertices()) > 0.10 {
		t.Errorf("DistinctVertices = %.0f, truth %d", r.DistinctVertices, g.NumVertices())
	}
	trueDup := 1 - float64(g.NumEdges())/float64(len(raw))
	if math.Abs(r.DuplicateRate-trueDup) > 0.05 {
		t.Errorf("DuplicateRate = %.3f, truth %.3f", r.DuplicateRate, trueDup)
	}
	if len(r.TopVertices) != 10 {
		t.Fatalf("TopVertices has %d entries", len(r.TopVertices))
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestMonitorHeavyHittersOnHeavyTail(t *testing.T) {
	// Space-saving guarantees presence only for keys above N/capacity
	// arrivals, so test the hitters on a stream that actually has such
	// keys: the flickr stand-in (power-law, max degree in the hundreds).
	src, err := gen.Open(gen.DatasetFlickr, gen.ScaleSmall, 42)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	m, _ := New(Config{Seed: 7})
	for _, e := range raw {
		g.AddEdge(e.U, e.V)
		m.ProcessEdge(e)
	}
	meanDeg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	for _, e := range m.Report(5).TopVertices {
		if float64(g.Degree(e.Key)) < 5*meanDeg {
			t.Errorf("reported hitter %d has degree %d, mean is %.1f",
				e.Key, g.Degree(e.Key), meanDeg)
		}
	}
}

func TestMonitorSelfLoops(t *testing.T) {
	m, _ := New(Config{})
	m.ProcessEdge(stream.Edge{U: 1, V: 1})
	m.ProcessEdge(stream.Edge{U: 1, V: 2})
	r := m.Report(5)
	if r.SelfLoops != 1 || r.Edges != 1 {
		t.Errorf("self-loop accounting: %+v", r)
	}
}

func TestMonitorDegreeLookup(t *testing.T) {
	m, _ := New(Config{Seed: 1})
	for i := 0; i < 50; i++ {
		m.ProcessEdge(stream.Edge{U: 7, V: uint64(100 + i)})
	}
	if got := m.Degree(7); got < 50 {
		t.Errorf("Degree(7) = %d underestimates 50", got)
	}
}

func TestMonitorEmptyReport(t *testing.T) {
	m, _ := New(Config{})
	r := m.Report(5)
	if r.Edges != 0 || r.DuplicateRate != 0 || r.MeanDegree != 0 {
		t.Errorf("empty report = %+v", r)
	}
}
