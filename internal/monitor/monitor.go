package monitor

import (
	"fmt"

	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

// StreamMonitor profiles a graph stream in constant space, combining the
// three summaries: distinct vertices and edges (KMV), approximate vertex
// degrees (Count–Min), and the top-degree vertices (space-saving).
type StreamMonitor struct {
	edges     int64
	selfLoops int64

	vertices *KMV
	edgeSet  *KMV
	degrees  *CountMin
	hitters  *SpaceSaving
}

// Config parameterises a StreamMonitor. Zero values select defaults.
type Config struct {
	// KMVSize is the size of the distinct counters (default 1024;
	// relative error ≈ 1/√k ≈ 3%).
	KMVSize int
	// CountMinWidth and CountMinDepth size the degree sketch (defaults
	// 16384 × 4).
	CountMinWidth, CountMinDepth int
	// HeavyHitters is the number of tracked top-degree vertices
	// (default 64).
	HeavyHitters int
	// Seed drives the hash functions.
	Seed uint64
}

// New returns an empty StreamMonitor.
func New(cfg Config) (*StreamMonitor, error) {
	if cfg.KMVSize == 0 {
		cfg.KMVSize = 1024
	}
	if cfg.CountMinWidth == 0 {
		cfg.CountMinWidth = 16384
	}
	if cfg.CountMinDepth == 0 {
		cfg.CountMinDepth = 4
	}
	if cfg.HeavyHitters == 0 {
		cfg.HeavyHitters = 64
	}
	sm := rng.NewSplitMix64(cfg.Seed)
	vertices, err := NewKMV(cfg.KMVSize, sm.Uint64())
	if err != nil {
		return nil, err
	}
	edgeSet, err := NewKMV(cfg.KMVSize, sm.Uint64())
	if err != nil {
		return nil, err
	}
	degrees, err := NewCountMin(cfg.CountMinWidth, cfg.CountMinDepth, sm.Uint64())
	if err != nil {
		return nil, err
	}
	hitters, err := NewSpaceSaving(cfg.HeavyHitters)
	if err != nil {
		return nil, err
	}
	return &StreamMonitor{
		vertices: vertices,
		edgeSet:  edgeSet,
		degrees:  degrees,
		hitters:  hitters,
	}, nil
}

// ProcessEdge folds one stream edge into the profile.
func (m *StreamMonitor) ProcessEdge(e stream.Edge) {
	if e.IsSelfLoop() {
		m.selfLoops++
		return
	}
	m.edges++
	c := e.Canonical()
	// Edge fingerprint: mix the canonical pair into one key.
	key := rng.Mix64(c.U)*0x9e3779b97f4a7c15 + rng.Mix64(c.V)
	m.edgeSet.Add(key)
	m.vertices.Add(e.U)
	m.vertices.Add(e.V)
	m.degrees.Add(e.U, 1)
	m.degrees.Add(e.V, 1)
	m.hitters.Add(e.U, 1)
	m.hitters.Add(e.V, 1)
}

// Degree returns the approximate arrival-degree of u (an overestimate by
// at most the Count–Min error).
func (m *StreamMonitor) Degree(u uint64) uint64 { return m.degrees.Count(u) }

// Report summarises the stream so far.
type Report struct {
	// Edges is the number of non-self-loop edges observed.
	Edges int64
	// SelfLoops counts dropped self-loops.
	SelfLoops int64
	// DistinctEdges estimates the number of distinct undirected edges.
	DistinctEdges float64
	// DistinctVertices estimates the number of distinct vertices.
	DistinctVertices float64
	// DuplicateRate estimates the fraction of arrivals that repeat an
	// earlier edge, in [0, 1].
	DuplicateRate float64
	// MeanDegree estimates 2·DistinctEdges / DistinctVertices.
	MeanDegree float64
	// TopVertices are the highest-arrival-degree vertices.
	TopVertices []Entry
}

// Report returns the current profile. topK selects how many heavy
// hitters to include.
func (m *StreamMonitor) Report(topK int) Report {
	r := Report{
		Edges:            m.edges,
		SelfLoops:        m.selfLoops,
		DistinctEdges:    m.edgeSet.Estimate(),
		DistinctVertices: m.vertices.Estimate(),
		TopVertices:      m.hitters.Top(topK),
	}
	if m.edges > 0 {
		dup := 1 - r.DistinctEdges/float64(m.edges)
		if dup < 0 {
			dup = 0
		}
		r.DuplicateRate = dup
	}
	if r.DistinctVertices > 0 {
		r.MeanDegree = 2 * r.DistinctEdges / r.DistinctVertices
	}
	return r
}

// MemoryBytes returns the total payload memory of the profile.
func (m *StreamMonitor) MemoryBytes() int {
	return m.vertices.MemoryBytes() + m.edgeSet.MemoryBytes() +
		m.degrees.MemoryBytes() + m.hitters.MemoryBytes()
}

// String renders a compact one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("edges=%d distinct=%.0f vertices=%.0f dup=%.1f%% mean_deg=%.1f self_loops=%d",
		r.Edges, r.DistinctEdges, r.DistinctVertices, 100*r.DuplicateRate, r.MeanDegree, r.SelfLoops)
}
