// Package monitor profiles a graph stream in constant space: how many
// distinct edges and vertices it carries, how much of it is duplicates,
// which vertices dominate, and how the degree mass is distributed. It is
// the operational companion to the sketches — before choosing K or a
// degree mode (DESIGN.md §2.4) you want to know the duplicate rate and
// the tail of the stream, and a production ingester wants those numbers
// continuously.
//
// Three classic summaries are implemented from scratch: a Count–Min
// sketch (approximate per-key counts, used for degree lookups), a
// space-saving heavy-hitter table (the top-degree vertices), and a
// k-minimum-values distinct counter (distinct edges/vertices under
// duplication).
package monitor

import (
	"fmt"

	"linkpred/internal/hashing"
)

// CountMin is a Count–Min sketch: a width×depth counter matrix where
// each key increments one counter per row (chosen by that row's hash)
// and reads back the minimum — an overestimate with error ≤ εN
// (ε ≈ e/width) with probability ≥ 1 − δ (δ ≈ exp(−depth)).
type CountMin struct {
	width, depth int
	rows         [][]uint64
	hashes       *hashing.Family
	total        uint64
}

// NewCountMin returns a Count–Min sketch with the given width (counters
// per row) and depth (rows). It returns an error if either is < 1.
func NewCountMin(width, depth int, seed uint64) (*CountMin, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("monitor: CountMin needs width, depth >= 1 (got %d, %d)", width, depth)
	}
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &CountMin{
		width:  width,
		depth:  depth,
		rows:   rows,
		hashes: hashing.NewFamily(hashing.KindMixed, depth, seed),
	}, nil
}

// Add increments key's count by delta.
func (c *CountMin) Add(key uint64, delta uint64) {
	for i := 0; i < c.depth; i++ {
		c.rows[i][c.hashes.Hash(i, key)%uint64(c.width)] += delta
	}
	c.total += delta
}

// Count returns the estimated count of key (never an underestimate).
func (c *CountMin) Count(key uint64) uint64 {
	min := ^uint64(0)
	for i := 0; i < c.depth; i++ {
		if v := c.rows[i][c.hashes.Hash(i, key)%uint64(c.width)]; v < min {
			min = v
		}
	}
	return min
}

// Total returns the sum of all added deltas.
func (c *CountMin) Total() uint64 { return c.total }

// MemoryBytes returns the payload size of the counter matrix.
func (c *CountMin) MemoryBytes() int { return 8 * c.width * c.depth }
