package linkpred

import (
	"math"
	"sync"
	"testing"
)

// sameScore is bit-identity with NaN treated as one value: the batch
// path must reproduce the sequential oracle's floats exactly.
func sameScore(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// dedupCandidates reproduces the batch path's candidate normalisation
// (first occurrence kept, self skipped) so the sequential oracle can be
// run on the same effective list.
func dedupCandidates(u uint64, cands []uint64) []uint64 {
	seen := make(map[uint64]struct{}, len(cands))
	out := make([]uint64, 0, len(cands))
	for _, v := range cands {
		if v == u {
			continue
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// topKEqual asserts two rankings agree exactly: same vertices in the
// same order with bit-identical scores.
func topKEqual(t *testing.T, label string, got, want []Candidate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].V != want[i].V || !sameScore(got[i].Score, want[i].Score) {
			t.Fatalf("%s: rank %d: got {%d %v}, want {%d %v}", label, i, got[i].V, got[i].Score, want[i].V, want[i].Score)
		}
	}
}

// topKFixture builds a duplicate-heavy test stream plus a candidate list
// with unknowns, the source itself, and repeats.
func topKFixture() ([]Edge, []uint64, uint64) {
	var edges []Edge
	// Vertex 1 shares neighborhoods of varying overlap with 2..40.
	for hub := uint64(2); hub <= 40; hub++ {
		for n := uint64(100); n < 100+hub; n++ {
			edges = append(edges, Edge{U: 1, V: n})
			edges = append(edges, Edge{U: hub, V: n})
		}
	}
	cands := make([]uint64, 0, 128)
	for v := uint64(1); v <= 50; v++ { // includes source 1 and unknowns 41..50
		cands = append(cands, v)
	}
	for v := uint64(2); v <= 40; v += 3 { // duplicates
		cands = append(cands, v, v)
	}
	return edges, cands, 1
}

// topKOracle runs the retained sequential reference ranking over the
// deduplicated candidate list.
func topKOracle(t *testing.T, u uint64, cands []uint64, k int, score func(v uint64) (float64, error)) []Candidate {
	t.Helper()
	got, err := topKByScore(u, dedupCandidates(u, cands), k, score)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestPredictorTopKMatchesSequentialOracle(t *testing.T) {
	edges, cands, u := topKFixture()
	for _, distinct := range []bool{false, true} {
		p, err := New(Config{K: 32, Seed: 7, DistinctDegrees: distinct})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range edges {
			p.ObserveEdge(e)
		}
		for _, m := range AllMeasures {
			for _, k := range []int{0, 1, 5, len(cands), len(cands) + 10} {
				got, err := p.TopK(m, u, cands, k)
				if err != nil {
					t.Fatalf("TopK(%v, k=%d): %v", m, k, err)
				}
				want := topKOracle(t, u, cands, k, func(v uint64) (float64, error) { return p.Score(m, u, v) })
				topKEqual(t, m.String(), got, want)
			}
		}
	}
}

func TestConcurrentTopKMatchesSequentialOracle(t *testing.T) {
	edges, cands, u := topKFixture()
	for _, distinct := range []bool{false, true} {
		c, err := NewConcurrent(Config{K: 32, Seed: 7, DistinctDegrees: distinct}, 8)
		if err != nil {
			t.Fatal(err)
		}
		c.ObserveEdges(edges)
		for _, m := range AllMeasures {
			got, err := c.TopK(m, u, cands, 7)
			if err != nil {
				t.Fatalf("TopK(%v): %v", m, err)
			}
			want := topKOracle(t, u, cands, 7, func(v uint64) (float64, error) { return c.Score(m, u, v) })
			topKEqual(t, m.String(), got, want)
		}
	}
}

func TestConcurrentDirectedTopKMatchesSequentialOracle(t *testing.T) {
	edges, cands, u := topKFixture()
	c, err := NewConcurrentDirected(Config{K: 32, Seed: 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.ObserveEdges(edges)
	for _, m := range AllMeasures {
		got, err := c.TopK(m, u, cands, 7)
		if err != nil {
			t.Fatalf("TopK(%v): %v", m, err)
		}
		want := topKOracle(t, u, cands, 7, func(v uint64) (float64, error) { return c.Score(m, u, v) })
		topKEqual(t, m.String(), got, want)
	}
}

func TestWindowedTopKMatchesSequentialOracle(t *testing.T) {
	edges, cands, u := topKFixture()
	w, err := NewWindowed(Config{K: 32, Seed: 7}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range edges {
		e.T = int64(i) // advancing clock: queries span several generations
		w.ObserveEdge(e)
	}
	for _, m := range AllMeasures {
		got, err := w.TopK(m, u, cands, 7)
		if err != nil {
			t.Fatalf("TopK(%v): %v", m, err)
		}
		want := topKOracle(t, u, cands, 7, func(v uint64) (float64, error) { return w.Score(m, u, v) })
		topKEqual(t, m.String(), got, want)
	}
}

// TestTopKDeduplicatesCandidates is the regression test for the
// duplicate-result bug: a candidate repeated in the input used to appear
// once per repetition in the ranking, crowding out genuinely distinct
// vertices.
func TestTopKDeduplicatesCandidates(t *testing.T) {
	edges, _, u := topKFixture()
	p, err := New(Config{K: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		p.ObserveEdge(e)
	}
	// 40 is the strongest candidate; repeat it enough to fill k on its own.
	cands := []uint64{40, 40, 40, 40, 40, 39, 38, 37, 36}
	got, err := p.TopK(AdamicAdar, u, cands, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d results, want 4", len(got))
	}
	seen := make(map[uint64]bool)
	for _, c := range got {
		if seen[c.V] {
			t.Fatalf("duplicate result entry for %d: %v", c.V, got)
		}
		seen[c.V] = true
	}
	uniq, err := p.TopK(AdamicAdar, u, []uint64{40, 39, 38, 37, 36}, 4)
	if err != nil {
		t.Fatal(err)
	}
	topKEqual(t, "dup vs uniq", got, uniq)
}

// TestTopKBatchNaNAndTies drives the heap selection directly with
// synthetic scores: NaN ranks below every real score, equal scores break
// toward the smaller id, and the heap agrees with the sequential sort at
// every k.
func TestTopKBatchNaNAndTies(t *testing.T) {
	nan := math.NaN()
	scores := map[uint64]float64{
		1: nan, 2: 0.5, 3: 0.5, 4: nan, 5: 1.5, 6: 0, 7: -1, 8: 0.5, 9: math.Inf(1), 10: math.Inf(-1),
	}
	cands := []uint64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	scoreBatch := func(dedup []uint64, out []float64) ([]float64, error) {
		if cap(out) < len(dedup) {
			out = make([]float64, len(dedup))
		}
		out = out[:len(dedup)]
		for i, v := range dedup {
			out[i] = scores[v]
		}
		return out, nil
	}
	for k := 0; k <= len(cands)+1; k++ {
		got, err := topKBatch(99, cands, k, scoreBatch)
		if err != nil {
			t.Fatal(err)
		}
		want, err := topKByScore(99, cands, k, func(v uint64) (float64, error) { return scores[v], nil })
		if err != nil {
			t.Fatal(err)
		}
		topKEqual(t, "synthetic", got, want)
	}
	// Spot-check the full ordering: +Inf first, NaNs last by id.
	full, err := topKBatch(99, cands, len(cands), scoreBatch)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []uint64{9, 5, 2, 3, 8, 6, 7, 10, 1, 4}
	for i, v := range wantOrder {
		if full[i].V != v {
			t.Fatalf("full order: rank %d = %d, want %d (%v)", i, full[i].V, v, full)
		}
	}
}

// TestConcurrentTopKRace races batched queries against batched writers;
// run with -race. Result contents are unasserted (the store is moving),
// only shape and memory safety.
func TestConcurrentTopKRace(t *testing.T) {
	edges, cands, u := topKFixture()
	c, err := NewConcurrent(Config{K: 16, Seed: 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.ObserveEdges(edges[:len(edges)/2])
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c.ObserveEdges(edges[len(edges)/2:])
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m := AllMeasures[i%len(AllMeasures)]
				got, err := c.TopK(m, u, cands, 5)
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) > 5 {
					t.Errorf("got %d results, want <= 5", len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestScoreBatchAllocsBounded pins the O(shards+k) allocation claim: a
// steady-state batched query over many candidates must not allocate
// per-candidate.
func TestScoreBatchAllocsBounded(t *testing.T) {
	c, err := NewConcurrent(Config{K: 32, Seed: 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	edges, _, u := topKFixture()
	c.ObserveEdges(edges)
	cands := make([]uint64, 10000)
	for i := range cands {
		cands[i] = uint64(i % 200)
	}
	for i := 0; i < 3; i++ { // warm the scratch pools
		if _, err := c.TopK(AdamicAdar, u, cands, 10); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := c.TopK(AdamicAdar, u, cands, 10); err != nil {
			t.Fatal(err)
		}
	})
	// The steady-state cost is the result slice plus a few pool headers —
	// far below one allocation per candidate.
	if allocs > 64 {
		t.Fatalf("TopK over %d candidates allocates %v objects per run; want O(shards+k)", len(cands), allocs)
	}
}
