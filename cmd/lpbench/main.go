// Command lpbench regenerates the evaluation tables and figures of the
// reconstructed experiment suite (DESIGN.md §6, EXPERIMENTS.md).
//
// Usage:
//
//	lpbench -exp all                 # run the full suite (minutes)
//	lpbench -exp e2,e5 -quick        # selected experiments, small scale
//	lpbench -exp all -csv out/       # also write one CSV per experiment
//	lpbench -queries                 # query-path experiment (e21) → BENCH_query.json
//	lpbench -accuracy                # sketch-budgeting experiment (e23) → BENCH_accuracy.json
//
// Each experiment prints an aligned ASCII table; -csv additionally writes
// machine-readable series for plotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"linkpred/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lpbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiments to run: all, or comma-separated ids (e1..e23)")
		quick    = fs.Bool("quick", false, "small-scale run (seconds instead of minutes)")
		seed     = fs.Uint64("seed", 42, "experiment seed (EXPERIMENTS.md uses 42)")
		csvDir   = fs.String("csv", "", "directory to write per-experiment CSV files (optional)")
		jsonDir  = fs.String("json", "", "directory to write per-experiment JSON files (optional)")
		list     = fs.Bool("list", false, "list available experiments and exit")
		parallel = fs.Int("parallel", 0, "max writer goroutines swept by the ingest scaling experiment (0 = default 8)")
		batch    = fs.Int("batch", 0, "edges per batch for batched-ingest measurements (0 = default 256)")
		queries  = fs.Bool("queries", false, "run the batched query experiment (e21) and write BENCH_query.json in the current directory")
		accuracy = fs.Bool("accuracy", false, "run the sketch-budgeting experiment (e23) and write BENCH_accuracy.json in the current directory")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file (go tool pprof)")
		memProf  = fs.String("memprofile", "", "write a heap profile after the selected experiments to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lpbench: create mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows retained heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lpbench: write mem profile:", err)
			}
		}()
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %-6s %s\n", e.ID, e.Kind, e.Title)
		}
		return nil
	}

	var selected []bench.Experiment
	if *queries || *accuracy {
		var ids []string
		if *queries {
			ids = append(ids, "e21")
		}
		if *accuracy {
			ids = append(ids, "e23")
		}
		for _, id := range ids {
			e, err := bench.Lookup(id)
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	} else if *exp == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return fmt.Errorf("create output dir: %w", err)
			}
		}
	}
	// writeTable renders one experiment's table into dir via render.
	writeTable := func(dir, id, ext string, render func(io.Writer) error) error {
		path := filepath.Join(dir, id+ext)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		if err := render(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", path, err)
		}
		return nil
	}

	cfg := bench.RunConfig{Quick: *quick, Seed: *seed, Parallel: *parallel, Batch: *batch}
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := table.WriteASCII(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeTable(*csvDir, e.ID, ".csv", table.WriteCSV); err != nil {
				return err
			}
		}
		if *jsonDir != "" {
			if err := writeTable(*jsonDir, e.ID, ".json", table.WriteJSON); err != nil {
				return err
			}
		}
		if *queries && e.ID == "e21" {
			if err := writeTable(".", "BENCH_query", ".json", table.WriteJSON); err != nil {
				return err
			}
			fmt.Fprintln(stdout, "wrote BENCH_query.json")
		}
		if *accuracy && e.ID == "e23" {
			if err := writeTable(".", "BENCH_accuracy", ".json", table.WriteJSON); err != nil {
				return err
			}
			fmt.Fprintln(stdout, "wrote BENCH_accuracy.json")
		}
	}
	return nil
}
