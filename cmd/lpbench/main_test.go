package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1 ", "e10", "e18"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-exp", "e1", "-quick", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E1: dataset statistics") {
		t.Errorf("output missing table title:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "[e1 completed in") {
		t.Error("output missing completion line")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "e1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "dataset,") {
		t.Errorf("csv header wrong: %q", string(csv[:40]))
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunIngestScalingWithJSON(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-exp", "e20", "-quick", "-parallel", "2", "-batch", "64", "-json", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E20: batched parallel ingest") {
		t.Errorf("output missing e20 title:\n%s", out.String())
	}
	js, err := os.ReadFile(filepath.Join(dir, "e20.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("e20.json invalid: %v", err)
	}
	// -parallel 2 sweeps goroutines 1 and 2 with three modes each
	// (per-edge, batched, pipelined), then the pipelined-auto row and
	// the two live-server wire-format rows (text vs binary frames).
	if len(doc.Rows) != 9 {
		t.Errorf("e20.json has %d rows, want 9:\n%s", len(doc.Rows), js)
	}
	if len(doc.Columns) == 0 || doc.Columns[0] != "mode" {
		t.Errorf("unexpected columns: %v", doc.Columns)
	}
	last := doc.Rows[len(doc.Rows)-1]
	if len(last) == 0 || last[0] != "http-binary" {
		t.Errorf("last row should be the binary-ingest row, got %v", last)
	}
}
