package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1 ", "e10", "e18"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-exp", "e1", "-quick", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E1: dataset statistics") {
		t.Errorf("output missing table title:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "[e1 completed in") {
		t.Error("output missing completion line")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "e1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "dataset,") {
		t.Errorf("csv header wrong: %q", string(csv[:40]))
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Error("bad flag should error")
	}
}
