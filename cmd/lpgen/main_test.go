package main

import (
	"os"
	"strings"
	"testing"

	"linkpred/internal/stream"
)

func TestMakeSourceModels(t *testing.T) {
	cases := []struct {
		name  string
		model string
	}{
		{"er", "er"}, {"ba", "ba"}, {"ws", "ws"},
		{"config", "config"}, {"fire", "fire"},
		{"citation", "citation"}, {"rmat", "rmat"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src, err := makeSource(c.model, "", "medium", 100, 500, 3, 4, 5, 10, 0.1, 2.5, 0.3, 0.3, 1)
			if err != nil {
				t.Fatalf("makeSource(%s): %v", c.model, err)
			}
			es, err := stream.Collect(stream.Limit(src, 50))
			if err != nil || len(es) == 0 {
				t.Fatalf("collect: %d edges, %v", len(es), err)
			}
		})
	}
}

func TestMakeSourceDatasets(t *testing.T) {
	for _, scale := range []string{"small"} {
		src, err := makeSource("", "coauthor", scale, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7)
		if err != nil {
			t.Fatalf("dataset at scale %s: %v", scale, err)
		}
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMakeSourceErrors(t *testing.T) {
	cases := []struct {
		model, dataset, scale string
		wantSubstr            string
	}{
		{"", "", "medium", "required"},
		{"er", "coauthor", "medium", "not both"},
		{"zebra", "", "medium", "unknown model"},
		{"", "zebra", "medium", "unknown dataset"},
		{"", "coauthor", "zebra", "unknown scale"},
	}
	for _, c := range cases {
		_, err := makeSource(c.model, c.dataset, c.scale, 100, 500, 3, 4, 5, 10, 0.1, 2.5, 0.3, 0.3, 1)
		if err == nil || !strings.Contains(err.Error(), c.wantSubstr) {
			t.Errorf("makeSource(%q, %q, %q) err = %v, want containing %q",
				c.model, c.dataset, c.scale, err, c.wantSubstr)
		}
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"text", "binary"} {
		path := dir + "/out." + format
		var out strings.Builder
		err := run([]string{"-model", "er", "-n", "50", "-m", "200",
			"-out", path, "-format", format}, &out)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !strings.Contains(out.String(), "wrote 200 edges") {
			t.Errorf("%s output: %q", format, out.String())
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		var src stream.Source
		if format == "binary" {
			src = stream.NewBinaryReader(f)
		} else {
			src = stream.NewTextReader(f)
		}
		es, err := stream.Collect(src)
		f.Close()
		if err != nil || len(es) != 200 {
			t.Fatalf("%s round trip: %d edges, %v", format, len(es), err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "er"}, &out); err == nil {
		t.Error("missing -out should error")
	}
	if err := run([]string{"-model", "er", "-out", t.TempDir() + "/x", "-format", "zebra"}, &out); err == nil {
		t.Error("unknown format should error")
	}
	if err := run([]string{"-out", "/nonexistent-dir-xyz/f", "-model", "er"}, &out); err == nil {
		t.Error("unwritable path should error")
	}
}
