// Command lpgen generates synthetic graph streams and writes them to a
// file in the text ("u v t" per line) or binary format understood by
// lpstream and the examples.
//
// Usage:
//
//	lpgen -model ba -n 10000 -mper 4 -seed 42 -out stream.txt
//	lpgen -model er -n 5000 -m 100000 -out stream.bin -format binary
//	lpgen -dataset coauthor -scale medium -out dblp-like.txt
//
// Either -model (with its parameters) or -dataset (a named stand-in from
// the experiment suite) selects the stream.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"linkpred/internal/gen"
	"linkpred/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lpgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lpgen", flag.ContinueOnError)
	var (
		model     = fs.String("model", "", "generator model: er | ba | ws | config | fire | rmat | citation (directed)")
		dataset   = fs.String("dataset", "", "named stand-in stream: coauthor | flickr | livejournal | youtube")
		scale     = fs.String("scale", "medium", "dataset scale: small | medium | large")
		n         = fs.Int("n", 10000, "number of vertices")
		m         = fs.Int("m", 100000, "number of edges (er, config)")
		mPer      = fs.Int("mper", 4, "edges per new vertex (ba)")
		k         = fs.Int("k", 6, "ring degree (ws)")
		beta      = fs.Float64("beta", 0.1, "rewiring probability (ws)")
		gamma     = fs.Float64("gamma", 2.5, "power-law exponent (config)")
		p         = fs.Float64("p", 0.3, "burn probability (fire)")
		refs      = fs.Int("refs", 10, "references per paper (citation)")
		scaleBits = fs.Int("rmat-scale", 16, "log2 of the vertex count (rmat)")
		recency   = fs.Float64("recency", 0.3, "recent-literature citation probability (citation)")
		seed      = fs.Uint64("seed", 42, "generator seed")
		out       = fs.String("out", "", "output file (required)")
		format    = fs.String("format", "text", "output format: text | binary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	src, err := makeSource(*model, *dataset, *scale, *n, *m, *mPer, *k, *refs, *scaleBits, *beta, *gamma, *p, *recency, *seed)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create output: %w", err)
	}
	defer f.Close()

	var written int
	switch *format {
	case "text":
		written, err = stream.WriteText(f, src)
	case "binary":
		written, err = stream.WriteBinary(f, src)
	default:
		return fmt.Errorf("unknown format %q (want text or binary)", *format)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close output: %w", err)
	}
	fmt.Fprintf(stdout, "wrote %d edges to %s (%s)\n", written, *out, *format)
	return nil
}

func makeSource(model, dataset, scale string, n, m, mPer, k, refs, scaleBits int, beta, gamma, p, recency float64, seed uint64) (stream.Source, error) {
	switch {
	case model != "" && dataset != "":
		return nil, fmt.Errorf("give either -model or -dataset, not both")
	case dataset != "":
		var s gen.Scale
		switch scale {
		case "small":
			s = gen.ScaleSmall
		case "medium":
			s = gen.ScaleMedium
		case "large":
			s = gen.ScaleLarge
		default:
			return nil, fmt.Errorf("unknown scale %q", scale)
		}
		return gen.Open(gen.Dataset(dataset), s, seed)
	case model == "er":
		return gen.ErdosRenyi(n, m, seed)
	case model == "ba":
		return gen.BarabasiAlbert(n, mPer, seed)
	case model == "ws":
		return gen.WattsStrogatz(n, k, beta, seed)
	case model == "config":
		return gen.ConfigModel(n, m, gamma, seed)
	case model == "fire":
		return gen.ForestFire(n, p, seed)
	case model == "citation":
		return gen.Citation(n, refs, recency, seed)
	case model == "rmat":
		return gen.RMAT(scaleBits, m, 0.57, 0.19, 0.19, 0.05, seed)
	case model == "":
		return nil, fmt.Errorf("one of -model or -dataset is required")
	default:
		return nil, fmt.Errorf("unknown model %q (want er, ba, ws, config, fire, rmat, citation)", model)
	}
}
