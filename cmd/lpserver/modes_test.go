package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postBody posts body to url and returns the response text, asserting
// the status.
func postBody(t *testing.T, url, body string, wantStatus int) string {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d %s, want %d", url, resp.StatusCode, b, wantStatus)
	}
	return string(b)
}

// TestModeFlagServesAllEndpoints boots lpserver in every -mode and
// drives the full endpoint set — /ingest, /score, /scorebatch, /topk —
// proving the HTTP surface is identical regardless of store.
func TestModeFlagServesAllEndpoints(t *testing.T) {
	for _, mode := range []string{"single", "concurrent", "directed", "concurrent-directed", "windowed", "dynamic"} {
		t.Run(mode, func(t *testing.T) {
			var out strings.Builder
			a, err := build([]string{"-addr", ":0", "-k", "32", "-mode", mode,
				"-window", "1000000", "-gens", "4"}, &out)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "serving "+mode+" sketch") {
				t.Errorf("boot banner missing mode: %q", out.String())
			}
			ts := httptest.NewServer(a.srv)
			defer ts.Close()

			postBody(t, ts.URL+"/ingest", "1 10\n2 10\n1 11\n2 11\n10 2\n11 2\n", http.StatusOK)

			for _, m := range []string{"jaccard", "common-neighbors", "adamic-adar",
				"resource-allocation", "preferential-attachment", "cosine"} {
				body := getBody(t, ts.URL+"/score?u=1&v=2&measure="+m)
				if !strings.Contains(string(body), `"score"`) {
					t.Errorf("mode %s /score measure=%s: %s", mode, m, body)
				}
			}
			sb := postBody(t, ts.URL+"/scorebatch",
				`{"measure":"jaccard","pairs":[{"u":1,"v":2},{"u":2,"v":10}]}`, http.StatusOK)
			if !strings.Contains(sb, `"scores"`) {
				t.Errorf("mode %s /scorebatch: %s", mode, sb)
			}
			topk := getBody(t, ts.URL+"/topk?u=1&candidates=2,10,11&k=2")
			if !strings.Contains(string(topk), `"candidates"`) {
				t.Errorf("mode %s /topk: %s", mode, topk)
			}
			stats := getBody(t, ts.URL+"/stats")
			if !strings.Contains(string(stats), `"mode":"`+mode+`"`) {
				t.Errorf("mode %s /stats: %s", mode, stats)
			}
		})
	}
}

func TestModeFlagRejectsUnknown(t *testing.T) {
	var out strings.Builder
	if _, err := build([]string{"-mode", "zebra"}, &out); err == nil {
		t.Error("unknown -mode should error")
	}
	if _, err := build([]string{"-mode", "windowed", "-window", "0"}, &out); err == nil {
		t.Error("windowed mode with zero window should error")
	}
}

// TestWALRecoveryDirectedMode crashes a -mode=directed server and
// reboots it from the WAL: the log carries arc records, so the
// recovered store must preserve orientation, not fold arcs into edges.
func TestWALRecoveryDirectedMode(t *testing.T) {
	dir := t.TempDir()
	flags := []string{"-addr", ":0", "-k", "32", "-mode", "directed",
		"-wal-dir", dir, "-wal-fsync", "always"}

	var out strings.Builder
	a, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.srv)
	// Arcs 1 → m → 2: forward candidate arc 1 → 2 scores high,
	// reverse 2 → 1 scores zero — only if orientation survived.
	postBody(t, ts.URL+"/ingest", "1 10\n1 11\n1 12\n10 2\n11 2\n12 2\n", http.StatusOK)
	want := string(getBody(t, ts.URL+"/score?u=1&v=2&measure=common-neighbors"))
	ts.Close()
	// Crash: no Close, no checkpoint — state lives only in the log.

	out.Reset()
	a2, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.durable.Close()
	if !strings.Contains(out.String(), "recovered") {
		t.Errorf("second boot should report recovery: %q", out.String())
	}
	if got := a2.srv.Engine().NumEdges(); got != 6 {
		t.Errorf("recovered %d arcs, want 6", got)
	}
	ts2 := httptest.NewServer(a2.srv)
	defer ts2.Close()
	if got := string(getBody(t, ts2.URL+"/score?u=1&v=2&measure=common-neighbors")); got != want {
		t.Errorf("recovered forward score = %s, want %s", got, want)
	}
	rev := string(getBody(t, ts2.URL+"/score?u=2&v=1&measure=common-neighbors"))
	if rev == want {
		t.Errorf("reverse arc score %s equals forward %s: orientation lost in WAL replay", rev, want)
	}
}

// TestWALRecoveryWindowedMode crashes a -mode=windowed server and
// reboots it from the WAL, asserting the timestamped replay rebuilds
// the same window state.
func TestWALRecoveryWindowedMode(t *testing.T) {
	dir := t.TempDir()
	flags := []string{"-addr", ":0", "-k", "32", "-mode", "windowed",
		"-window", "1000", "-gens", "4", "-wal-dir", dir, "-wal-fsync", "always"}

	var out strings.Builder
	a, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.srv)
	postBody(t, ts.URL+"/ingest", "1 10 100\n2 10 150\n1 11 200\n2 11 300\n", http.StatusOK)
	want := string(getBody(t, ts.URL+"/pair?u=1&v=2"))
	ts.Close()

	out.Reset()
	a2, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.durable.Close()
	if !strings.Contains(out.String(), "recovered") {
		t.Errorf("second boot should report recovery: %q", out.String())
	}
	ts2 := httptest.NewServer(a2.srv)
	defer ts2.Close()
	if got := string(getBody(t, ts2.URL+"/pair?u=1&v=2")); got != want {
		t.Errorf("recovered /pair = %s, want %s", got, want)
	}
}

// TestCheckpointCrossModeBoot saves a checkpoint from a windowed server
// and boots a default-mode server pointed at the same file: the image's
// magic header must win over the -mode flag, restoring a windowed
// engine.
func TestCheckpointCrossModeBoot(t *testing.T) {
	ckpt := t.TempDir() + "/state.lp"
	var out strings.Builder
	a, err := build([]string{"-addr", ":0", "-k", "32", "-mode", "windowed",
		"-window", "1000", "-gens", "4", "-checkpoint", ckpt}, &out)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.srv)
	postBody(t, ts.URL+"/ingest", "1 10 100\n2 10 150\n", http.StatusOK)
	want := string(getBody(t, ts.URL+"/pair?u=1&v=2"))
	ts.Close()
	if err := a.saveCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// Default -mode is concurrent; the checkpoint is windowed.
	out.Reset()
	a2, err := build([]string{"-addr", ":0", "-k", "32", "-checkpoint", ckpt}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mode windowed") {
		t.Errorf("restore banner should name the image's mode: %q", out.String())
	}
	ts2 := httptest.NewServer(a2.srv)
	defer ts2.Close()
	if !strings.Contains(string(getBody(t, ts2.URL+"/stats")), `"mode":"windowed"`) {
		t.Errorf("restored server should serve the windowed engine")
	}
	if got := string(getBody(t, ts2.URL+"/pair?u=1&v=2")); got != want {
		t.Errorf("restored /pair = %s, want %s", got, want)
	}
}

// deleteBody issues DELETE against url with a text body and returns the
// response, asserting the status.
func deleteBody(t *testing.T, url, body string, wantStatus int) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("DELETE %s = %d %s, want %d", url, resp.StatusCode, b, wantStatus)
	}
	return string(b)
}

// TestDynamicModeServesDeletes boots -mode=dynamic and exercises the
// retraction surface: DELETE /ingest applies, other modes 400, and the
// degraded gauge shows up in /stats.
func TestDynamicModeServesDeletes(t *testing.T) {
	var out strings.Builder
	a, err := build([]string{"-addr", ":0", "-k", "32", "-mode", "dynamic", "-recover-depth", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.srv)
	defer ts.Close()
	postBody(t, ts.URL+"/ingest", "1 10\n2 10\n1 11\n2 11\n", http.StatusOK)
	resp := deleteBody(t, ts.URL+"/ingest", "1 11\n2 11\n9 9\n", http.StatusOK)
	if !strings.Contains(resp, `"applied":2`) {
		t.Errorf("delete response missing applied count: %s", resp)
	}
	stats := string(getBody(t, ts.URL+"/stats"))
	if !strings.Contains(stats, `"edges":2`) {
		t.Errorf("stats after deletes: %s", stats)
	}
	if !strings.Contains(stats, `"degraded_registers"`) || !strings.Contains(stats, `"recovery_depth":4`) {
		t.Errorf("stats missing dynamic gauges: %s", stats)
	}

	// Every other mode refuses retractions.
	var out2 strings.Builder
	a2, err := build([]string{"-addr", ":0", "-k", "32"}, &out2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(a2.srv)
	defer ts2.Close()
	deleteBody(t, ts2.URL+"/ingest", "1 2\n", http.StatusBadRequest)
}

// TestWALRecoveryDynamicMode crashes a -mode=dynamic server whose log
// holds interleaved insert and delete records, reboots it, and demands
// the recovered store be byte-identical to the served one.
func TestWALRecoveryDynamicMode(t *testing.T) {
	dir := t.TempDir()
	flags := []string{"-addr", ":0", "-k", "32", "-mode", "dynamic", "-recover-depth", "4",
		"-wal-dir", dir, "-wal-fsync", "always"}

	var out strings.Builder
	a, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.srv)
	postBody(t, ts.URL+"/ingest", "1 10\n2 10\n1 11\n2 11\n1 12\n2 12\n", http.StatusOK)
	deleteBody(t, ts.URL+"/ingest", "1 11\n2 12\n", http.StatusOK)
	postBody(t, ts.URL+"/ingest", "3 10\n", http.StatusOK)
	want := getBody(t, ts.URL+"/checkpoint")
	wantScore := string(getBody(t, ts.URL+"/score?u=1&v=2&measure=jaccard"))
	ts.Close()
	// Crash: no Close, no checkpoint — state lives only in the log.

	out.Reset()
	a2, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.durable.Close()
	if !strings.Contains(out.String(), "recovered") {
		t.Errorf("second boot should report recovery: %q", out.String())
	}
	if got := a2.srv.Engine().NumEdges(); got != 5 {
		t.Errorf("recovered %d edges, want 5 (7 inserts - 2 deletes)", got)
	}
	ts2 := httptest.NewServer(a2.srv)
	defer ts2.Close()
	got := getBody(t, ts2.URL+"/checkpoint")
	if !bytes.Equal(want, got) {
		t.Errorf("recovered store image differs from the served one (%d vs %d bytes)", len(want), len(got))
	}
	if gotScore := string(getBody(t, ts2.URL+"/score?u=1&v=2&measure=jaccard")); gotScore != wantScore {
		t.Errorf("recovered score = %s, want %s", gotScore, wantScore)
	}
}
