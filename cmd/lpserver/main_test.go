package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	linkpred "linkpred"
)

func TestBuildAndServe(t *testing.T) {
	warm := t.TempDir() + "/warm.txt"
	if err := os.WriteFile(warm, []byte("1 2\n2 3\n1 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	a, err := build([]string{"-addr", ":0", "-k", "32", "-warm", warm}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if a.addr != ":0" {
		t.Errorf("addr = %q", a.addr)
	}
	if !strings.Contains(out.String(), "warmed with 3 edges") {
		t.Errorf("warm summary missing: %q", out.String())
	}
	ts := httptest.NewServer(a.srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"edges":3`) {
		t.Errorf("stats = %d %s", resp.StatusCode, body)
	}
}

func TestBuildErrors(t *testing.T) {
	var out strings.Builder
	if _, err := build([]string{"-k", "0"}, &out); err == nil {
		t.Error("bad K should error")
	}
	if _, err := build([]string{"-warm", "/no/such/file"}, &out); err == nil {
		t.Error("missing warm file should error")
	}
	if _, err := build([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag should error")
	}
	warm := t.TempDir() + "/bad.txt"
	if err := os.WriteFile(warm, []byte("not an edge\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := build([]string{"-warm", warm}, &out); err == nil {
		t.Error("malformed warm stream should error")
	}
	junk := t.TempDir() + "/junk.lp"
	if err := os.WriteFile(junk, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := build([]string{"-checkpoint", junk}, &out); err == nil {
		t.Error("corrupt checkpoint should error")
	}
}

// getBody fetches a URL and returns the raw response bytes.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d %s", url, resp.StatusCode, body)
	}
	return body
}

func TestCheckpointRoundTrip(t *testing.T) {
	ckpt := t.TempDir() + "/state.lp"
	flags := []string{"-addr", ":0", "-k", "64", "-checkpoint", ckpt}

	var out strings.Builder
	a, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	// A missing checkpoint is the normal first boot, not an error.
	if strings.Contains(out.String(), "restored") {
		t.Errorf("fresh boot should not restore: %q", out.String())
	}

	ts := httptest.NewServer(a.srv)
	resp, err := http.Post(ts.URL+"/ingest", "text/plain",
		strings.NewReader("1 2\n2 3\n1 3\n3 4\n4 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := getBody(t, ts.URL+"/pair?u=1&v=3")
	ts.Close()

	if err := a.saveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file should be renamed away")
	}

	// Reboot with the same flags: state must come back byte-identical.
	out.Reset()
	a2, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "restored checkpoint") {
		t.Errorf("second boot should report restore: %q", out.String())
	}
	ts2 := httptest.NewServer(a2.srv)
	defer ts2.Close()
	got := getBody(t, ts2.URL+"/pair?u=1&v=3")
	if string(got) != string(want) {
		t.Errorf("/pair after restore = %s, want %s", got, want)
	}
}

func TestRunShutdownSavesCheckpoint(t *testing.T) {
	ckpt := t.TempDir() + "/state.lp"
	var out strings.Builder
	a, err := build([]string{"-addr", "127.0.0.1:0", "-k", "32", "-checkpoint", ckpt}, &out)
	if err != nil {
		t.Fatal(err)
	}
	a.srv.Engine().ObserveEdge(linkpred.Edge{U: 1, V: 2})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, a, &out) }()
	time.Sleep(50 * time.Millisecond) // let the listener bind
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after cancel")
	}
	if !strings.Contains(out.String(), "checkpoint saved") {
		t.Errorf("shutdown log missing checkpoint: %q", out.String())
	}
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	f.Close()
}

func TestWALRecoveryAfterCrash(t *testing.T) {
	dir := t.TempDir()
	flags := []string{"-addr", ":0", "-k", "32", "-wal-dir", dir, "-wal-fsync", "always"}

	var out strings.Builder
	a, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.srv)
	resp, err := http.Post(ts.URL+"/ingest", "text/plain",
		strings.NewReader("1 2\n2 3\n1 3\n3 4\n4 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	want := getBody(t, ts.URL+"/pair?u=1&v=3")
	metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), `"wal"`) || !strings.Contains(string(metrics), `"recovery"`) {
		t.Errorf("/metrics missing wal/recovery sections: %s", metrics)
	}
	ts.Close()
	// Crash: abandon the app without Close — no final checkpoint, the
	// state lives only in the fsynced log.

	out.Reset()
	a2, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.durable.Close()
	if !strings.Contains(out.String(), "recovered") {
		t.Errorf("second boot should report recovery: %q", out.String())
	}
	if n := a2.srv.Engine().NumEdges(); n != 5 {
		t.Errorf("recovered %d edges, want 5", n)
	}
	ts2 := httptest.NewServer(a2.srv)
	defer ts2.Close()
	if got := getBody(t, ts2.URL+"/pair?u=1&v=3"); string(got) != string(want) {
		t.Errorf("/pair after crash recovery = %s, want %s", got, want)
	}
	health := getBody(t, ts2.URL+"/healthz")
	if !strings.Contains(string(health), `"status":"ok"`) {
		t.Errorf("healthz after recovery = %s", health)
	}
}

func TestWALSkipsWarmAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	warm := t.TempDir() + "/warm.txt"
	if err := os.WriteFile(warm, []byte("1 2\n2 3\n1 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	flags := []string{"-addr", ":0", "-k", "32", "-warm", warm,
		"-wal-dir", dir, "-wal-fsync", "always"}

	var out strings.Builder
	a, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "warmed with 3 edges") {
		t.Errorf("first boot should warm: %q", out.String())
	}
	// Graceful shutdown path: final checkpoint + prune.
	if err := a.durable.Close(); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	a2, err := build(flags, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.durable.Close()
	if !strings.Contains(out.String(), "skipping -warm") {
		t.Errorf("second boot should skip warm: %q", out.String())
	}
	if n := a2.srv.Engine().NumEdges(); n != 3 {
		t.Errorf("recovered %d edges, want 3 (warm must not double-ingest)", n)
	}
}
