package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

func TestBuildAndServe(t *testing.T) {
	warm := t.TempDir() + "/warm.txt"
	if err := os.WriteFile(warm, []byte("1 2\n2 3\n1 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	handler, addr, err := build([]string{"-addr", ":0", "-k", "32", "-warm", warm}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":0" {
		t.Errorf("addr = %q", addr)
	}
	if !strings.Contains(out.String(), "warmed with 3 edges") {
		t.Errorf("warm summary missing: %q", out.String())
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"edges":3`) {
		t.Errorf("stats = %d %s", resp.StatusCode, body)
	}
}

func TestBuildErrors(t *testing.T) {
	var out strings.Builder
	if _, _, err := build([]string{"-k", "0"}, &out); err == nil {
		t.Error("bad K should error")
	}
	if _, _, err := build([]string{"-warm", "/no/such/file"}, &out); err == nil {
		t.Error("missing warm file should error")
	}
	if _, _, err := build([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag should error")
	}
	warm := t.TempDir() + "/bad.txt"
	if err := os.WriteFile(warm, []byte("not an edge\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := build([]string{"-warm", warm}, &out); err == nil {
		t.Error("malformed warm stream should error")
	}
}
