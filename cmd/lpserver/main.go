// Command lpserver runs the streaming link predictor as an HTTP service.
//
// Usage:
//
//	lpserver -addr :8080 -k 128 -shards 8
//	lpserver -addr :8080 -mode directed          # serve an arc stream
//	lpserver -addr :8080 -mode windowed -window 3600 -gens 6
//	lpserver -addr :8080 -warm stream.txt        # pre-ingest a stream file
//	lpserver -addr :8080 -checkpoint state.lp    # restore on start, save on exit
//
// -mode selects the predictor engine behind the same HTTP surface:
// concurrent (default, sharded undirected), single, directed,
// concurrent-directed, windowed (sliding window over Edge.T; set
// -window and -gens), or dynamic (deletion-capable; set -recover-depth
// for the per-register recovery buffer). Every mode serves the full
// endpoint set — /score, /scorebatch, /topk, durable /ingest —
// identically; directed modes read ingested lines as arcs u → v and
// log them to the WAL as arc records, single-writer modes are wrapped
// in a lock so concurrent traffic stays safe, and dynamic mode
// additionally serves DELETE /ingest (retractions, logged as
// KindDelete records and replayed as deletions on recovery).
// Checkpoints are self-describing: on restore (boot -checkpoint, WAL
// snapshot, or POST /restore) the image's magic header selects the
// store, whatever mode wrote it.
//
// Endpoints (see internal/server):
//
//	POST /ingest      edge lines "u v [t]"
//	GET  /pair?u=&v=
//	GET  /score?u=&v=&measure=
//	GET  /topk?u=&candidates=…&measure=&k=   (candidates optional with -candidates)
//	POST /scorebatch  {"measure": m, "pairs": [{"u":…,"v":…},…]}
//	GET  /stats
//	GET  /metrics     request counters, latency histograms, predictor gauges
//	GET  /healthz     liveness probe
//	GET  /checkpoint  binary predictor image (download)
//	POST /restore     binary predictor image (upload)
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window, and when -checkpoint is set the predictor is saved
// to that path (atomically, via fsync + rename) before exit. On the next
// start the same flag restores it, so a restart loses no accumulated
// state.
//
// Crash safety goes further with -wal-dir: every acknowledged /ingest
// batch is appended to a checksummed write-ahead log before it touches
// the sketches (fsync policy via -wal-fsync), and a background
// checkpointer (-checkpoint-interval) snapshots the predictor and prunes
// the log. After a crash — not just a graceful exit — the next start
// loads the newest valid snapshot and replays the WAL tail, truncating
// any torn record, so no acknowledged edge is lost. /metrics reports the
// log and recovery ("wal", "recovery"), and /healthz degrades (still
// 200, with a reason) when fsync or checkpointing starts failing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	linkpred "linkpred"
	"linkpred/internal/candidates"
	"linkpred/internal/monitor"
	"linkpred/internal/server"
	"linkpred/internal/stream"
	"linkpred/internal/wal"
)

// app bundles everything main needs to serve and shut down: the handler
// (whose Predictor method yields the live predictor, which /restore may
// have swapped), the listen address and timeouts, the checkpoint path
// ("" disables persistence), and the durability pipeline (nil without
// -wal-dir).
type app struct {
	srv        *server.Server
	addr       string
	checkpoint string
	readTO     time.Duration
	writeTO    time.Duration
	durable    *wal.Durable
	ckptEvery  time.Duration
}

func main() {
	a, err := build(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpserver:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, a, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lpserver:", err)
		os.Exit(1)
	}
}

// build parses the flags, constructs (and optionally restores or warms)
// the predictor, and returns the configured app — everything main needs
// short of binding the socket, so tests can drive the whole setup
// through httptest.
func build(args []string, stdout io.Writer) (*app, error) {
	fs := flag.NewFlagSet("lpserver", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		mode       = fs.String("mode", linkpred.ModeConcurrent, "engine mode: single | concurrent | directed | concurrent-directed | windowed | dynamic")
		k          = fs.Int("k", 128, "sketch registers per vertex")
		tiers      = fs.String("tiers", "", "tiered register budgets as comma-separated K:PromoteAt rungs (e.g. 16:0,64:8,128:64; last K must equal -k; empty = uniform)")
		expectedV  = fs.Int("expected-vertices", 0, "pre-size vertex maps and register arenas for this many vertices (0 = grow on demand)")
		seed       = fs.Uint64("seed", 42, "hash seed")
		shards     = fs.Int("shards", 8, "lock shards for concurrent ingest")
		window     = fs.Int64("window", 3600, "with -mode windowed: window span in Edge.T units")
		gens       = fs.Int("gens", 4, "with -mode windowed: tumbling generations covering the window")
		recDepth   = fs.Int("recover-depth", 0, "with -mode dynamic: smallest hashes kept per register for deletion recovery (0 = default)")
		distinct   = fs.Bool("distinct-degrees", true, "KMV distinct-degree estimation (robust to duplicate edges)")
		warm       = fs.String("warm", "", "optional stream file to ingest before serving")
		checkpoint = fs.String("checkpoint", "", "restore predictor from this file on start (if present) and save to it on graceful exit")
		maxBody    = fs.Int64("max-body-bytes", 64<<20, "request body cap for /ingest and /restore (0 = unlimited)")
		readTO     = fs.Duration("read-timeout", time.Minute, "HTTP server read timeout")
		writeTO    = fs.Duration("write-timeout", 5*time.Minute, "HTTP server write timeout")
		mon        = fs.Bool("monitor", true, "profile the ingest stream (duplicate rate, distinct counts) in /metrics")
		cand       = fs.Bool("candidates", false, "track candidate vertices on ingest so /topk can omit the candidates parameter")
		candRecent = fs.Int("candidates-recent", 8, "recent neighbors remembered per vertex by -candidates")
		candPool   = fs.Int("candidates-pool", 64, "frequent-vertex pool size shared by -candidates")
		candMaxV   = fs.Int("candidates-max-vertices", 1<<20, "vertex cap for -candidates: tracking a new vertex past the cap evicts the oldest (0 = unbounded)")
		ingestWork = fs.Int("ingest-workers", 0, "shard-owner ingest pipeline workers on the concurrent modes: 0 = one per processor (synchronous on a single-proc host), > 0 forces that many, < 0 disables the pipeline")
		ingestRing = fs.Int("ingest-ring", 0, "ingest pipeline per-owner queue capacity in batches (0 = default 256)")
		walDir     = fs.String("wal-dir", "", "write-ahead log directory: log every /ingest batch before applying, checkpoint periodically, and recover snapshot+log on start")
		walFsync   = fs.String("wal-fsync", "interval", "WAL fsync policy: always (fsync per batch) | interval (background fsync) | never (crash loses OS-buffered tail)")
		ckptEvery  = fs.Duration("checkpoint-interval", 5*time.Minute, "with -wal-dir, how often the background checkpointer snapshots the predictor and prunes the log")
		healBack   = fs.Duration("heal-backoff", 250*time.Millisecond, "with -wal-dir, first-probe backoff of the WAL self-healer (0 disables healing: write failures stay sticky until the next append)")
		maxInflt   = fs.Int("max-inflight", 0, "per-endpoint concurrently executing request cap; excess waits in a bounded queue, overflow is shed with 429 (0 = unlimited)")
		queueDepth = fs.Int("queue-depth", 64, "with -max-inflight, requests allowed to wait for an execution slot before shedding")
		defaultDL  = fs.Duration("default-deadline", 0, "server-assigned deadline per request, overridable via the X-Deadline-Ms header (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	tierLadder, err := linkpred.ParseTiers(*tiers)
	if err != nil {
		return nil, err
	}
	pred, err := linkpred.NewEngine(linkpred.EngineSpec{
		Mode:             *mode,
		Config:           linkpred.Config{K: *k, Seed: *seed, DistinctDegrees: *distinct, Tiers: tierLadder},
		Shards:           *shards,
		Window:           *window,
		Gens:             *gens,
		RecoverDepth:     *recDepth,
		IngestWorkers:    *ingestWork,
		IngestRing:       *ingestRing,
		ExpectedVertices: *expectedV,
	})
	if err != nil {
		return nil, err
	}

	if *checkpoint != "" {
		restored, err := loadCheckpoint(*checkpoint)
		if err != nil {
			return nil, err
		}
		if restored != nil {
			pred = restored
			startIngestPipeline(pred, *ingestWork, *ingestRing)
			fmt.Fprintf(stdout, "restored checkpoint %s (mode %s, %d vertices, %d edges)\n",
				*checkpoint, linkpred.ModeOf(pred), pred.NumVertices(), pred.NumEdges())
		}
	}

	opts := server.Options{
		MaxBodyBytes: *maxBody,
		Admission: server.AdmissionConfig{
			MaxInFlight:     *maxInflt,
			QueueDepth:      *queueDepth,
			DefaultDeadline: *defaultDL,
		},
	}
	built := false
	defer func() {
		if !built && opts.Durability != nil {
			opts.Durability.Close() // build failed after WAL open
		}
	}()
	// The checkpointer must snapshot the predictor *currently served*
	// (POST /restore may swap it), but the Server is built last: the
	// snapshot closure routes through this holder once it is filled in.
	var srvHolder atomic.Pointer[server.Server]
	recovered := false
	if *walDir != "" {
		policy, err := wal.ParseFsyncPolicy(*walFsync)
		if err != nil {
			return nil, err
		}
		// Batched replay: the WAL reader coalesces consecutive same-kind
		// records into large batches, and on pipeline-capable engines
		// each batch is published asynchronously so the reader decodes
		// the next segment while the shard owners apply the previous
		// batch. The snapshot loader restarts the pipeline on whatever
		// engine the image selects, so replay rides it too.
		res, err := wal.RecoverBatched(nil, *walDir, func(r io.Reader) error {
			loaded, err := linkpred.LoadAnyEngine(r)
			if err != nil {
				return err
			}
			pred = loaded
			startIngestPipeline(pred, *ingestWork, *ingestRing)
			return nil
		}, func(kind wal.Kind, edges []stream.Edge) error {
			if kind == wal.KindDelete {
				del, ok := linkpred.DeleterOf(pred)
				if !ok {
					return fmt.Errorf("log holds delete records but mode %q cannot delete (use -mode=dynamic)", linkpred.ModeOf(pred))
				}
				// Ordering barrier: a delete must observe every insert
				// logged before it. (Deletion-capable modes are currently
				// single-writer, so this is a no-op safety net.)
				if ai, ok := linkpred.AsyncIngesterOf(pred); ok {
					ai.FlushIngest()
				}
				del.DeleteEdges(toEdges(edges))
				return nil
			}
			if ai, ok := linkpred.AsyncIngesterOf(pred); ok {
				ai.ObserveEdgesAsync(toEdges(edges))
				return nil
			}
			pred.ObserveEdges(toEdges(edges))
			return nil
		}, wal.BatchedReplayOptions{})
		if err != nil {
			return nil, fmt.Errorf("wal recovery: %w", err)
		}
		// Replay published asynchronously; wait for the owners to finish
		// before reading stats or serving traffic.
		if ai, ok := linkpred.AsyncIngesterOf(pred); ok {
			ai.FlushIngest()
		}
		recovered = res.SnapshotLoaded || res.Replay.Records > 0
		if recovered {
			fmt.Fprintf(stdout, "recovered %s: snapshot seq %d + %d replayed edges (%d vertices, %d edges)\n",
				*walDir, res.SnapshotSeq, res.Replay.Edges, pred.NumVertices(), pred.NumEdges())
		}
		if res.Replay.TruncatedBytes > 0 {
			fmt.Fprintf(stdout, "wal: truncated %d bytes of torn/corrupt log tail\n", res.Replay.TruncatedBytes)
		}
		var heal *wal.HealOptions
		if *healBack > 0 {
			// Self-healing: on a write/sync failure the log degrades
			// (ingest sheds with 503 + Retry-After, queries keep serving)
			// and a background healer repairs the segment with jittered
			// exponential backoff — no restart required.
			heal = &wal.HealOptions{Backoff: *healBack}
		}
		w, err := wal.Open(*walDir, wal.Options{Fsync: policy, NextSeq: res.LastSeq() + 1, Heal: heal})
		if err != nil {
			return nil, fmt.Errorf("open wal: %w", err)
		}
		// Directed engines log arcs, so a replayed record keeps its
		// orientation.
		kind := wal.KindEdge
		if linkpred.DirectedEngine(pred) {
			kind = wal.KindArc
		}
		opts.Durability = wal.NewDurable(w, *walDir, kind, func(wr io.Writer) error {
			if s := srvHolder.Load(); s != nil {
				return s.Engine().Save(wr)
			}
			return pred.Save(wr)
		})
		opts.Recovery = &res
	}

	var tracker *candidates.Tracker
	if *cand {
		tracker, err = candidates.NewBounded(*candRecent, *candPool, *candMaxV)
		if err != nil {
			return nil, fmt.Errorf("candidate tracker: %w", err)
		}
	}
	opts.Candidates = tracker

	switch {
	case *warm != "" && recovered:
		// The WAL already holds everything from the previous run —
		// including the warm stream it was booted with. Re-ingesting it
		// would double-count every warm edge's arrivals.
		fmt.Fprintf(stdout, "skipping -warm %s: state recovered from %s\n", *warm, *walDir)
	case *warm != "":
		f, err := os.Open(*warm)
		if err != nil {
			return nil, fmt.Errorf("open warm stream: %w", err)
		}
		n := 0
		err = stream.ForEachBatch(stream.NewTextReader(f), 4096, func(batch []stream.Edge) error {
			apply := func(b []stream.Edge) {
				pred.ObserveEdges(toEdges(b))
				if tracker != nil {
					for _, e := range b {
						tracker.ProcessEdge(e)
					}
				}
			}
			if opts.Durability != nil {
				if err := opts.Durability.Ingest(batch, apply); err != nil {
					return err
				}
			} else {
				apply(batch)
			}
			n += len(batch)
			return nil
		})
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("warm ingest: %w", err)
		}
		fmt.Fprintf(stdout, "warmed with %d edges (%d vertices)\n", n, pred.NumVertices())
	}

	if *mon {
		opts.Monitor, err = monitor.New(monitor.Config{Seed: *seed})
		if err != nil {
			return nil, fmt.Errorf("stream monitor: %w", err)
		}
	}
	fmt.Fprintf(stdout, "serving %s sketch k=%d\n", linkpred.ModeOf(pred), *k)
	srv := server.NewWithOptions(pred, opts)
	if opts.Durability != nil {
		srvHolder.Store(srv)
		opts.Durability.StartCheckpointer(*ckptEvery)
	}
	built = true
	return &app{
		srv:        srv,
		addr:       *addr,
		checkpoint: *checkpoint,
		readTO:     *readTO,
		writeTO:    *writeTO,
		durable:    opts.Durability,
		ckptEvery:  *ckptEvery,
	}, nil
}

// startIngestPipeline starts the shard-owner ingest pipeline on engines
// that support it, honoring the -ingest-workers policy (< 0 disables).
// No-op on single-writer modes.
func startIngestPipeline(e linkpred.Engine, workers, ring int) {
	if workers < 0 {
		return
	}
	if pl, ok := linkpred.PipelinerOf(e); ok {
		pl.StartIngestPipeline(workers, ring)
	}
}

// toEdges converts a batch of stream edges to the library edge type.
func toEdges(batch []stream.Edge) []linkpred.Edge {
	out := make([]linkpred.Edge, len(batch))
	for i, e := range batch {
		out[i] = linkpred.Edge{U: e.U, V: e.V, T: e.T}
	}
	return out
}

// run serves until the context is cancelled (signal) or the listener
// fails, then drains in-flight requests and checkpoints the predictor.
func run(ctx context.Context, a *app, stdout io.Writer) error {
	httpSrv := &http.Server{
		Addr:         a.addr,
		Handler:      a.srv,
		ReadTimeout:  a.readTO,
		WriteTimeout: a.writeTO,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stdout, "lpserver listening on %s\n", a.addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		// Drain window expired; the checkpoint below still captures the
		// predictor (ingest is monotone, a partial request loses only
		// its own tail).
		fmt.Fprintln(stdout, "shutdown:", err)
	}
	// Quiesce the ingest pipeline before anything snapshots the store:
	// HTTP is drained, but asynchronously published batches may still be
	// in flight on the shard owners. Flush is the completion barrier;
	// stopping the pipeline then makes the store fully quiescent, so the
	// final WAL checkpoint and -checkpoint image capture every
	// acknowledged edge. The engine is re-read from the server because
	// POST /restore may have swapped it.
	eng := a.srv.Engine()
	if ai, ok := linkpred.AsyncIngesterOf(eng); ok {
		ai.FlushIngest()
	}
	if pl, ok := linkpred.PipelinerOf(eng); ok {
		pl.StopIngestPipeline()
	}
	if a.durable != nil {
		// Final checkpoint: snapshot the predictor and prune the log, so
		// the next boot recovers from the snapshot without a replay.
		if err := a.durable.Close(); err != nil {
			fmt.Fprintln(stdout, "wal close:", err)
		} else {
			fmt.Fprintln(stdout, "wal checkpointed and closed")
		}
	}
	if a.checkpoint == "" {
		return nil
	}
	if err := a.saveCheckpoint(); err != nil {
		return fmt.Errorf("save checkpoint: %w", err)
	}
	fmt.Fprintf(stdout, "checkpoint saved to %s\n", a.checkpoint)
	return nil
}

// loadCheckpoint reads a predictor image from path; the image's magic
// header selects the engine mode, whatever wrote it. A missing file is
// not an error — it is the normal first boot — and yields (nil, nil).
func loadCheckpoint(path string) (linkpred.Engine, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("open checkpoint: %w", err)
	}
	defer f.Close()
	pred, err := linkpred.LoadAnyEngine(f)
	if err != nil {
		return nil, fmt.Errorf("load checkpoint %s: %w", path, err)
	}
	return pred, nil
}

// saveCheckpoint writes the live predictor (the one currently served,
// which /restore may have swapped in) to the checkpoint path. The write
// is atomic and durable: temp file in the same directory, fsynced, then
// renamed over the target with the directory fsynced too, so neither a
// crash mid-write nor one just after the rename can leave a corrupt or
// missing image.
func (a *app) saveCheckpoint() error {
	return wal.AtomicWriteFile(a.checkpoint, func(w io.Writer) error {
		return a.srv.Engine().Save(w)
	})
}
