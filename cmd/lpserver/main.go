// Command lpserver runs the streaming link predictor as an HTTP service.
//
// Usage:
//
//	lpserver -addr :8080 -k 128 -shards 8
//	lpserver -addr :8080 -warm stream.txt     # pre-ingest a stream file
//
// Endpoints (see internal/server):
//
//	POST /ingest   edge lines "u v [t]"
//	GET  /pair?u=&v=
//	GET  /score?u=&v=&measure=
//	GET  /topk?u=&candidates=…&measure=&k=
//	GET  /stats
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	linkpred "linkpred"
	"linkpred/internal/server"
	"linkpred/internal/stream"
)

func main() {
	handler, addr, err := build(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpserver:", err)
		os.Exit(1)
	}
	fmt.Printf("lpserver listening on %s\n", addr)
	if err := http.ListenAndServe(addr, handler); err != nil {
		fmt.Fprintln(os.Stderr, "lpserver:", err)
		os.Exit(1)
	}
}

// build parses the flags, constructs (and optionally warms) the
// predictor, and returns the HTTP handler plus the listen address —
// everything main needs short of binding the socket, so tests can drive
// the whole setup through httptest.
func build(args []string, stdout io.Writer) (http.Handler, string, error) {
	fs := flag.NewFlagSet("lpserver", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		k        = fs.Int("k", 128, "sketch registers per vertex")
		seed     = fs.Uint64("seed", 42, "hash seed")
		shards   = fs.Int("shards", 8, "lock shards for concurrent ingest")
		distinct = fs.Bool("distinct-degrees", true, "KMV distinct-degree estimation (robust to duplicate edges)")
		warm     = fs.String("warm", "", "optional stream file to ingest before serving")
	)
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}

	pred, err := linkpred.NewConcurrent(linkpred.Config{
		K: *k, Seed: *seed, DistinctDegrees: *distinct,
	}, *shards)
	if err != nil {
		return nil, "", err
	}

	if *warm != "" {
		f, err := os.Open(*warm)
		if err != nil {
			return nil, "", fmt.Errorf("open warm stream: %w", err)
		}
		n := 0
		err = stream.ForEach(stream.NewTextReader(f), func(e stream.Edge) error {
			pred.ObserveEdge(linkpred.Edge{U: e.U, V: e.V, T: e.T})
			n++
			return nil
		})
		f.Close()
		if err != nil {
			return nil, "", fmt.Errorf("warm ingest: %w", err)
		}
		fmt.Fprintf(stdout, "warmed with %d edges (%d vertices)\n", n, pred.NumVertices())
	}
	fmt.Fprintf(stdout, "serving sketch k=%d over %d shards\n", *k, *shards)
	return server.New(pred), *addr, nil
}
