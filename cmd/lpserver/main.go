// Command lpserver runs the streaming link predictor as an HTTP service.
//
// Usage:
//
//	lpserver -addr :8080 -k 128 -shards 8
//	lpserver -addr :8080 -warm stream.txt        # pre-ingest a stream file
//	lpserver -addr :8080 -checkpoint state.lp    # restore on start, save on exit
//
// Endpoints (see internal/server):
//
//	POST /ingest      edge lines "u v [t]"
//	GET  /pair?u=&v=
//	GET  /score?u=&v=&measure=
//	GET  /topk?u=&candidates=…&measure=&k=   (candidates optional with -candidates)
//	POST /scorebatch  {"measure": m, "pairs": [{"u":…,"v":…},…]}
//	GET  /stats
//	GET  /metrics     request counters, latency histograms, predictor gauges
//	GET  /healthz     liveness probe
//	GET  /checkpoint  binary predictor image (download)
//	POST /restore     binary predictor image (upload)
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window, and when -checkpoint is set the predictor is saved
// to that path (atomically, via rename) before exit. On the next start
// the same flag restores it, so a restart loses no accumulated state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	linkpred "linkpred"
	"linkpred/internal/candidates"
	"linkpred/internal/monitor"
	"linkpred/internal/server"
	"linkpred/internal/stream"
)

// app bundles everything main needs to serve and shut down: the handler
// (whose Predictor method yields the live predictor, which /restore may
// have swapped), the listen address and timeouts, and the checkpoint
// path ("" disables persistence).
type app struct {
	srv        *server.Server
	addr       string
	checkpoint string
	readTO     time.Duration
	writeTO    time.Duration
}

func main() {
	a, err := build(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpserver:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, a, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lpserver:", err)
		os.Exit(1)
	}
}

// build parses the flags, constructs (and optionally restores or warms)
// the predictor, and returns the configured app — everything main needs
// short of binding the socket, so tests can drive the whole setup
// through httptest.
func build(args []string, stdout io.Writer) (*app, error) {
	fs := flag.NewFlagSet("lpserver", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		k          = fs.Int("k", 128, "sketch registers per vertex")
		seed       = fs.Uint64("seed", 42, "hash seed")
		shards     = fs.Int("shards", 8, "lock shards for concurrent ingest")
		distinct   = fs.Bool("distinct-degrees", true, "KMV distinct-degree estimation (robust to duplicate edges)")
		warm       = fs.String("warm", "", "optional stream file to ingest before serving")
		checkpoint = fs.String("checkpoint", "", "restore predictor from this file on start (if present) and save to it on graceful exit")
		maxBody    = fs.Int64("max-body-bytes", 64<<20, "request body cap for /ingest and /restore (0 = unlimited)")
		readTO     = fs.Duration("read-timeout", time.Minute, "HTTP server read timeout")
		writeTO    = fs.Duration("write-timeout", 5*time.Minute, "HTTP server write timeout")
		mon        = fs.Bool("monitor", true, "profile the ingest stream (duplicate rate, distinct counts) in /metrics")
		cand       = fs.Bool("candidates", false, "track candidate vertices on ingest so /topk can omit the candidates parameter")
		candRecent = fs.Int("candidates-recent", 8, "recent neighbors remembered per vertex by -candidates")
		candPool   = fs.Int("candidates-pool", 64, "frequent-vertex pool size shared by -candidates")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	pred, err := linkpred.NewConcurrent(linkpred.Config{
		K: *k, Seed: *seed, DistinctDegrees: *distinct,
	}, *shards)
	if err != nil {
		return nil, err
	}

	if *checkpoint != "" {
		restored, err := loadCheckpoint(*checkpoint)
		if err != nil {
			return nil, err
		}
		if restored != nil {
			pred = restored
			fmt.Fprintf(stdout, "restored checkpoint %s (%d vertices, %d edges)\n",
				*checkpoint, pred.NumVertices(), pred.NumEdges())
		}
	}

	var tracker *candidates.Tracker
	if *cand {
		tracker, err = candidates.New(*candRecent, *candPool)
		if err != nil {
			return nil, fmt.Errorf("candidate tracker: %w", err)
		}
	}

	if *warm != "" {
		f, err := os.Open(*warm)
		if err != nil {
			return nil, fmt.Errorf("open warm stream: %w", err)
		}
		n := 0
		err = stream.ForEach(stream.NewTextReader(f), func(e stream.Edge) error {
			pred.ObserveEdge(linkpred.Edge{U: e.U, V: e.V, T: e.T})
			if tracker != nil {
				tracker.ProcessEdge(e)
			}
			n++
			return nil
		})
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("warm ingest: %w", err)
		}
		fmt.Fprintf(stdout, "warmed with %d edges (%d vertices)\n", n, pred.NumVertices())
	}

	opts := server.Options{MaxBodyBytes: *maxBody, Candidates: tracker}
	if *mon {
		opts.Monitor, err = monitor.New(monitor.Config{Seed: *seed})
		if err != nil {
			return nil, fmt.Errorf("stream monitor: %w", err)
		}
	}
	fmt.Fprintf(stdout, "serving sketch k=%d over %d shards\n", *k, *shards)
	return &app{
		srv:        server.NewWithOptions(pred, opts),
		addr:       *addr,
		checkpoint: *checkpoint,
		readTO:     *readTO,
		writeTO:    *writeTO,
	}, nil
}

// run serves until the context is cancelled (signal) or the listener
// fails, then drains in-flight requests and checkpoints the predictor.
func run(ctx context.Context, a *app, stdout io.Writer) error {
	httpSrv := &http.Server{
		Addr:         a.addr,
		Handler:      a.srv,
		ReadTimeout:  a.readTO,
		WriteTimeout: a.writeTO,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stdout, "lpserver listening on %s\n", a.addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		// Drain window expired; the checkpoint below still captures the
		// predictor (ingest is monotone, a partial request loses only
		// its own tail).
		fmt.Fprintln(stdout, "shutdown:", err)
	}
	if a.checkpoint == "" {
		return nil
	}
	if err := a.saveCheckpoint(); err != nil {
		return fmt.Errorf("save checkpoint: %w", err)
	}
	fmt.Fprintf(stdout, "checkpoint saved to %s\n", a.checkpoint)
	return nil
}

// loadCheckpoint reads a predictor image from path. A missing file is
// not an error — it is the normal first boot — and yields (nil, nil).
func loadCheckpoint(path string) (*linkpred.Concurrent, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("open checkpoint: %w", err)
	}
	defer f.Close()
	pred, err := linkpred.LoadConcurrent(f)
	if err != nil {
		return nil, fmt.Errorf("load checkpoint %s: %w", path, err)
	}
	return pred, nil
}

// saveCheckpoint writes the live predictor (the one currently served,
// which /restore may have swapped in) to the checkpoint path. The write
// goes to a temp file in the same directory first and is renamed into
// place, so a crash mid-write never corrupts the previous image.
func (a *app) saveCheckpoint() error {
	tmp := a.checkpoint + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := a.srv.Predictor().Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, a.checkpoint)
}
