// Command lpstream runs the sketch-based streaming link predictor over an
// edge-stream file and answers link-prediction queries.
//
// Usage:
//
//	lpstream -in stream.txt -k 128 -pairs "3:17,42:99"
//	lpstream -in stream.bin -binary -k 256 -top 42 -topk 10
//	lpstream -in stream.txt -parallel 4                # sharded parallel ingest
//	lpstream -in stream.bin -binary -post http://localhost:8080  # binary-frame remote ingest
//	cat queries.txt | lpstream -in stream.txt          # "u v" per line
//
// Ingest reads the stream in batches (-batch edges at a time) and folds
// each batch through the library's batched ingest path; with -parallel
// N > 1 the batches are fanned out to N writer goroutines over a
// sharded predictor. Estimates are identical in every mode. After
// ingesting it prints a summary with the ingest rate, then the
// estimated Jaccard / common-neighbor / Adamic–Adar values for each
// query pair given via -pairs, the top-k candidates for the -top vertex
// (candidates are the vertices seen in the stream), and finally any
// "u v" query pairs read from stdin if it is not a terminal.
//
// With -wal-dir the ingest is crash-safe and resumable: every batch is
// appended to a checksummed write-ahead log before it is applied
// (fsync policy via -wal-fsync), and a snapshot is written when ingest
// completes. Rerun after a crash with the same flags and the same input
// file: the durable prefix is recovered from snapshot + log replay and
// skipped in the input, so a long ingest continues where the crash cut
// it off instead of starting over.
//
// With -deletes the run uses the deletion-capable dynamic engine: after
// the -in stream is ingested, every edge in the -deletes file is
// retracted from the sketches. Under -wal-dir the retractions are
// logged as KindDelete records (and replayed as deletions on resume);
// with -post they are shipped to the server's DELETE /ingest endpoint
// as binary delete frames.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	linkpred "linkpred"
	"linkpred/internal/monitor"
	"linkpred/internal/stream"
	"linkpred/internal/wal"
)

func main() {
	// Stdin queries only when something is piped in.
	var queries io.Reader
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice == 0 {
		queries = os.Stdin
	}
	if err := run(os.Args[1:], os.Stdout, queries); err != nil {
		fmt.Fprintln(os.Stderr, "lpstream:", err)
		os.Exit(1)
	}
}

// run executes the CLI against the given flags, output writer, and
// optional "u v"-per-line query reader (nil = no piped queries).
func run(args []string, stdout io.Writer, queries io.Reader) error {
	fs := flag.NewFlagSet("lpstream", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "input stream file (required)")
		binary   = fs.Bool("binary", false, "input is in the binary format")
		k        = fs.Int("k", 128, "sketch registers per vertex")
		tiers    = fs.String("tiers", "", "tiered register budgets as comma-separated K:PromoteAt rungs (e.g. 16:0,64:8,128:64; last K must equal -k; empty = uniform)")
		expV     = fs.Int("expected-vertices", 0, "pre-size vertex maps and register arenas for this many vertices (0 = grow on demand)")
		seed     = fs.Uint64("seed", 42, "hash seed")
		distinct = fs.Bool("distinct-degrees", false, "use KMV distinct-degree estimation (for streams with duplicate edges)")
		pairs    = fs.String("pairs", "", "comma-separated query pairs, e.g. \"3:17,42:99\"")
		top      = fs.Uint64("top", 0, "vertex to rank candidates for (0 = off)")
		topk     = fs.Int("topk", 10, "number of candidates to report for -top")
		measure  = fs.String("measure", "adamic-adar", "ranking measure: jaccard | common-neighbors | adamic-adar | resource-allocation | preferential-attachment | cosine")
		directed = fs.Bool("directed", false, "treat edges as directed arcs (u -> v); queries score candidate arcs")
		profile  = fs.Bool("profile", false, "also print a constant-space stream profile (distinct edges, duplicate rate, heavy hitters)")
		parallel = fs.Int("parallel", 1, "ingest writer goroutines; >1 switches to the sharded concurrent predictor")
		batch    = fs.Int("batch", 4096, "edges per ingest batch")
		deletes  = fs.String("deletes", "", "edge file to retract after ingest (uses the dynamic engine; same text/-binary format as -in)")
		recDepth = fs.Int("recover-depth", 0, "with -deletes: smallest hashes kept per register for deletion recovery (0 = default)")
		ingWork  = fs.Int("ingest-workers", 0, "shard-owner ingest pipeline workers with -parallel > 1: 0 = one per processor (synchronous on a single-proc host), > 0 forces that many, < 0 disables the pipeline")
		ingRing  = fs.Int("ingest-ring", 0, "ingest pipeline per-owner queue capacity in batches (0 = default)")
		walDir   = fs.String("wal-dir", "", "write-ahead log directory: log batches before applying, snapshot on completion, and resume a crashed ingest of the same input")
		walFsync = fs.String("wal-fsync", "interval", "WAL fsync policy: always | interval | never")
		post     = fs.String("post", "", "POST the stream to this lpserver base URL as binary frames (application/x-lp-edges) instead of ingesting locally")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1, got %d", *parallel)
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", *batch)
	}

	// Pick the engine mode: single-writer predictors at -parallel 1, the
	// sharded concurrent ones above that (shards = 4× the writer count so
	// that per-batch shard groups spread across writers). Every estimate
	// is identical across the four modes; only locking differs. The
	// constructor registry (linkpred.NewEngine) is the same one lpserver
	// serves from.
	tierLadder, err := linkpred.ParseTiers(*tiers)
	if err != nil {
		return err
	}
	cfg := linkpred.Config{K: *k, Seed: *seed, DistinctDegrees: *distinct, Tiers: tierLadder}
	mode := linkpred.ModeSingle
	switch {
	case *deletes != "" && *directed:
		return fmt.Errorf("-deletes needs the dynamic engine, which is undirected; drop -directed")
	case *deletes != "" && *parallel > 1:
		return fmt.Errorf("-deletes needs the dynamic engine, which is single-writer; drop -parallel")
	case *deletes != "":
		mode = linkpred.ModeDynamic
	case *directed && *parallel > 1:
		mode = linkpred.ModeConcurrentDirected
	case *directed:
		mode = linkpred.ModeDirected
	case *parallel > 1:
		mode = linkpred.ModeConcurrent
	}
	eng, err := linkpred.NewEngine(linkpred.EngineSpec{
		Mode: mode, Config: cfg, Shards: 4 * *parallel, RecoverDepth: *recDepth,
		IngestWorkers: *ingWork, IngestRing: *ingRing, ExpectedVertices: *expV,
	})
	if err != nil {
		return err
	}
	// load replaces the flag-built empty engine with a -wal-dir
	// snapshot's (the image's magic selects the store); the snapshot must
	// match the flags, or the resumed ingest would diverge from the
	// durable prefix.
	observe := func(batch []linkpred.Edge) { eng.ObserveEdges(batch) }
	load := func(r io.Reader) error {
		loaded, lerr := linkpred.LoadAnyEngine(r)
		if lerr != nil {
			return lerr
		}
		if got := loaded.Config(); got.K != cfg.K || got.Seed != cfg.Seed || got.DistinctDegrees != cfg.DistinctDegrees || got.Tiers != cfg.Tiers {
			return fmt.Errorf("snapshot was built with -k %d -seed %d -distinct-degrees=%v and a different -tiers ladder; rerun with the same flags",
				got.K, got.Seed, got.DistinctDegrees)
		}
		if got := linkpred.ModeOf(loaded); got != mode {
			return fmt.Errorf("snapshot was built in %s mode, this run is %s; rerun with the matching -directed/-parallel flags", got, mode)
		}
		eng = loaded
		if *ingWork >= 0 {
			if pl, ok := linkpred.PipelinerOf(eng); ok {
				pl.StartIngestPipeline(*ingWork, *ingRing)
			}
		}
		return nil
	}
	var mon *monitor.StreamMonitor
	if *profile {
		if mon, err = monitor.New(monitor.Config{Seed: *seed}); err != nil {
			return err
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		return fmt.Errorf("open stream: %w", err)
	}
	defer f.Close()
	var src stream.Source
	if *binary {
		src = stream.NewBinaryReader(f)
	} else {
		src = stream.NewTextReader(f)
	}

	// Remote ingest: frame the stream in the binary /ingest wire format
	// and ship it to a running lpserver in one request. Queries belong to
	// the server in this mode, so the local flags that need a predictor
	// (-pairs, -top, -wal-dir) don't apply.
	if *post != "" {
		if err := postStream(stdout, *post, src, *batch, *directed); err != nil {
			return err
		}
		if *deletes == "" {
			return nil
		}
		df, derr := os.Open(*deletes)
		if derr != nil {
			return fmt.Errorf("open deletes: %w", derr)
		}
		defer df.Close()
		var dsrc stream.Source
		if *binary {
			dsrc = stream.NewBinaryReader(df)
		} else {
			dsrc = stream.NewTextReader(df)
		}
		return postDeletes(stdout, *post, dsrc, *batch)
	}

	// Track the vertex universe for -top candidate generation.
	var vertices []uint64
	seen := make(map[uint64]struct{})
	note := func(u uint64) {
		if _, ok := seen[u]; !ok {
			seen[u] = struct{}{}
			vertices = append(vertices, u)
		}
	}

	// Crash-safe mode: recover whatever the previous run made durable
	// (snapshot + log replay), then skip that prefix of the input — the
	// sequence number counts input edges, so the resume point is exact.
	var durable *wal.Durable
	var skip uint64
	walKind := wal.KindEdge
	if *directed {
		walKind = wal.KindArc
	}
	if *walDir != "" {
		policy, perr := wal.ParseFsyncPolicy(*walFsync)
		if perr != nil {
			return perr
		}
		// Batched replay: consecutive same-kind records are coalesced into
		// large batches, and on pipeline-capable engines each batch is
		// published asynchronously so the log reader overlaps decode with
		// the shard owners' applies.
		res, rerr := wal.RecoverBatched(nil, *walDir, load, func(kind wal.Kind, batch []stream.Edge) error {
			b := make([]linkpred.Edge, len(batch))
			for i, e := range batch {
				b[i] = linkpred.Edge{U: e.U, V: e.V, T: e.T}
			}
			if kind == wal.KindDelete {
				del, ok := linkpred.DeleterOf(eng)
				if !ok {
					return fmt.Errorf("log holds delete records; rerun with the -deletes flag that wrote it")
				}
				del.DeleteEdges(b)
				return nil
			}
			if kind != walKind {
				return fmt.Errorf("log holds %s records; rerun with the matching -directed setting",
					map[wal.Kind]string{wal.KindEdge: "undirected edge", wal.KindArc: "directed arc"}[kind])
			}
			if ai, ok := linkpred.AsyncIngesterOf(eng); ok {
				ai.ObserveEdgesAsync(b)
				return nil
			}
			observe(b)
			return nil
		}, wal.BatchedReplayOptions{})
		if rerr != nil {
			return fmt.Errorf("wal recovery: %w", rerr)
		}
		if ai, ok := linkpred.AsyncIngesterOf(eng); ok {
			ai.FlushIngest()
		}
		skip = res.LastSeq()
		if skip > 0 {
			fmt.Fprintf(stdout, "resuming from %s: %d edges durable (snapshot seq %d, %d replayed), skipping them in the input\n",
				*walDir, skip, res.SnapshotSeq, res.Replay.Edges)
		}
		w, werr := wal.Open(*walDir, wal.Options{Fsync: policy, NextSeq: skip + 1})
		if werr != nil {
			return fmt.Errorf("open wal: %w", werr)
		}
		durable = wal.NewDurable(w, *walDir, walKind, func(wr io.Writer) error { return eng.Save(wr) })
	}

	// Batched ingest pipeline: the reader fills -batch-edge buffers and
	// handles the single-threaded bookkeeping (vertex universe, stream
	// profile); the sketch work runs through observe — inline at
	// -parallel 1, fanned out to writer goroutines otherwise. Recycled
	// buffers flow reader → workers → reader, so ingest allocates
	// nothing per batch at steady state.
	edges := 0
	start := time.Now()
	var (
		work, free chan []linkpred.Edge
		wg         sync.WaitGroup
	)
	if *parallel > 1 {
		work = make(chan []linkpred.Edge, *parallel)
		free = make(chan []linkpred.Edge, 2**parallel)
		for i := 0; i < cap(free); i++ {
			free <- make([]linkpred.Edge, 0, *batch)
		}
		for w := 0; w < *parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for b := range work {
					observe(b)
					free <- b[:0]
				}
			}()
		}
	}
	rbuf := make([]stream.Edge, *batch)
	inline := make([]linkpred.Edge, 0, *batch)
	for {
		n, rerr := stream.ReadBatch(src, rbuf)
		if n > 0 {
			be := rbuf[:n]
			if skip > 0 {
				// Durable from the previous run: recovery already folded
				// these into the sketches. They still count toward the
				// vertex universe and the profile, but are not re-ingested
				// or re-logged.
				d := len(be)
				if uint64(d) > skip {
					d = int(skip)
				}
				for _, e := range be[:d] {
					if mon != nil {
						mon.ProcessEdge(e)
					}
					note(e.U)
					note(e.V)
				}
				skip -= uint64(d)
				be = be[d:]
			}
			if len(be) > 0 {
				if durable != nil {
					// Log before apply: an acknowledged batch is exactly one
					// that recovery can reproduce.
					if _, aerr := durable.WAL().Append(walKind, be); aerr != nil {
						if *parallel > 1 {
							close(work)
							wg.Wait()
						}
						return fmt.Errorf("wal append: %w", aerr)
					}
				}
				b := inline[:0]
				if *parallel > 1 {
					b = <-free
				}
				for _, e := range be {
					if mon != nil {
						mon.ProcessEdge(e)
					}
					note(e.U)
					note(e.V)
					b = append(b, linkpred.Edge{U: e.U, V: e.V, T: e.T})
				}
				edges += len(be)
				if *parallel > 1 {
					work <- b
				} else {
					observe(b)
				}
			}
		}
		if rerr != nil || n < *batch {
			if *parallel > 1 {
				close(work)
				wg.Wait()
			}
			if rerr != nil && !errors.Is(rerr, io.EOF) {
				return rerr
			}
			break
		}
	}
	elapsed := time.Since(start)
	rate := float64(edges) / elapsed.Seconds()
	// Ingest is done; only queries follow. Stop the shard-owner
	// pipeline so its ring/batch scratch is released before the memory
	// summary — the reported figure must match a sequential run's.
	if pl, ok := linkpred.PipelinerOf(eng); ok {
		pl.StopIngestPipeline()
	}
	if *directed {
		fmt.Fprintf(stdout, "ingested %d arcs, %d vertices; sketch memory %.1f MiB (k=%d, directed)\n",
			edges, eng.NumVertices(), float64(eng.MemoryBytes())/(1<<20), *k)
	} else {
		fmt.Fprintf(stdout, "ingested %d edges, %d vertices; sketch memory %.1f MiB (k=%d)\n",
			edges, eng.NumVertices(), float64(eng.MemoryBytes())/(1<<20), *k)
	}
	fmt.Fprintf(stdout, "ingest: %.3fs, %.0f edges/sec (parallel=%d, batch=%d)\n",
		elapsed.Seconds(), rate, *parallel, *batch)

	// Retraction phase: feed the -deletes file through the dynamic
	// store's delete path. Any skip left over from recovery is the
	// durable delete prefix (the run crashed mid-retraction); it has
	// already been replayed and is skipped here the same way the input
	// prefix was.
	if *deletes != "" {
		del, ok := linkpred.DeleterOf(eng)
		if !ok {
			return fmt.Errorf("engine mode %s cannot delete edges", linkpred.ModeOf(eng))
		}
		df, derr := os.Open(*deletes)
		if derr != nil {
			return fmt.Errorf("open deletes: %w", derr)
		}
		var dsrc stream.Source
		if *binary {
			dsrc = stream.NewBinaryReader(df)
		} else {
			dsrc = stream.NewTextReader(df)
		}
		requested, applied := 0, 0
		dbuf := make([]stream.Edge, *batch)
		lbuf := make([]linkpred.Edge, 0, *batch)
		for {
			n, rerr := stream.ReadBatch(dsrc, dbuf)
			if n > 0 {
				be := dbuf[:n]
				if skip > 0 {
					d := len(be)
					if uint64(d) > skip {
						d = int(skip)
					}
					skip -= uint64(d)
					be = be[d:]
				}
				if len(be) > 0 {
					if durable != nil {
						// Log before apply, as KindDelete records in the same
						// sequence space as the inserts.
						if _, aerr := durable.WAL().Append(wal.KindDelete, be); aerr != nil {
							df.Close()
							return fmt.Errorf("wal append (delete): %w", aerr)
						}
					}
					b := lbuf[:0]
					for _, e := range be {
						b = append(b, linkpred.Edge{U: e.U, V: e.V, T: e.T})
					}
					requested += len(be)
					applied += del.DeleteEdges(b)
				}
			}
			if rerr != nil || n < *batch {
				df.Close()
				if rerr != nil && !errors.Is(rerr, io.EOF) {
					return rerr
				}
				break
			}
		}
		fmt.Fprintf(stdout, "retracted %d edges (%d applied, %d unknown or already gone); store now %d edges, %d vertices\n",
			requested, applied, requested-applied, eng.NumEdges(), eng.NumVertices())
		if dg, ok := linkpred.DegradedRegistersOf(eng); ok && dg > 0 {
			fmt.Fprintf(stdout, "deletion recovery buffers underflowed on %d registers; estimates touching them are conservative until those vertices re-accumulate\n", dg)
		}
	}
	if durable != nil {
		lastSeq := durable.WAL().LastSeq()
		if cerr := durable.Close(); cerr != nil {
			return fmt.Errorf("wal checkpoint: %w", cerr)
		}
		fmt.Fprintf(stdout, "wal: snapshot at seq %d written to %s\n", lastSeq, *walDir)
	}
	if mon != nil {
		r := mon.Report(5)
		fmt.Fprintf(stdout, "stream profile: %s (profile memory %.2f MiB)\n", r, float64(mon.MemoryBytes())/(1<<20))
		for i, h := range r.TopVertices {
			fmt.Fprintf(stdout, "  top vertex %d: id %d, ~%d arrivals (±%d)\n", i+1, h.Key, h.Count, h.Err)
		}
	}

	for _, spec := range splitNonEmpty(*pairs, ",") {
		uv := strings.SplitN(spec, ":", 2)
		if len(uv) != 2 {
			return fmt.Errorf("bad pair %q (want u:v)", spec)
		}
		u, err1 := strconv.ParseUint(strings.TrimSpace(uv[0]), 10, 64)
		v, err2 := strconv.ParseUint(strings.TrimSpace(uv[1]), 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad pair %q: %v %v", spec, err1, err2)
		}
		printPair(stdout, eng, *directed, u, v)
	}

	if *top != 0 {
		m, err := parseMeasure(*measure)
		if err != nil {
			return err
		}
		cands, err := eng.TopK(m, *top, vertices, *topk)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "top %d candidates for vertex %d by %s:\n", len(cands), *top, m)
		for i, c := range cands {
			fmt.Fprintf(stdout, "  %2d. vertex %-12d score %.4f\n", i+1, c.V, c.Score)
		}
	}

	// Piped queries, one "u v" pair per line.
	if queries != nil {
		sc := bufio.NewScanner(queries)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) != 2 {
				continue
			}
			u, err1 := strconv.ParseUint(fields[0], 10, 64)
			v, err2 := strconv.ParseUint(fields[1], 10, 64)
			if err1 != nil || err2 != nil {
				continue
			}
			printPair(stdout, eng, *directed, u, v)
		}
		if err := sc.Err(); err != nil && err != io.EOF {
			return fmt.Errorf("read queries: %w", err)
		}
	}
	return nil
}

// Remote-ingest retry policy. A chunk (postChunkBatches frames) is the
// unit of upload and retry: small enough to buffer and resend, large
// enough that the per-request overhead stays negligible.
const (
	postChunkBatches = 64 // frames per request
	postMaxAttempts  = 8  // tries per chunk before giving up
	postRetryBase    = 200 * time.Millisecond
	postRetryMax     = 5 * time.Second
)

// postRetryable reports whether a response status is worth retrying:
// 503 (durability degraded or WAL healing — the server said "later",
// possibly with a durable-prefix count) and 429 (admission shed).
func postRetryable(status int) bool {
	return status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests
}

// postBackoff returns how long to sleep before retry number attempt
// (0-based): the server's Retry-After hint when it sent one, otherwise
// jittered exponential backoff.
func postBackoff(resp *http.Response, attempt int) time.Duration {
	if resp != nil {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				return time.Duration(secs) * time.Second
			}
		}
	}
	d := postRetryBase
	for i := 0; i < attempt && d < postRetryMax; i++ {
		d *= 2
	}
	if d > postRetryMax {
		d = postRetryMax
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// appliedPrefix extracts the server's progress counter (ingested /
// deleted) from a 503 body: the number of this request's edges that
// made it into the log before durability failed. Those must not be
// resent — the log has them, a resend would double-count.
func appliedPrefix(body []byte, key string) int {
	var m map[string]any
	if json.Unmarshal(body, &m) != nil {
		return 0
	}
	if v, ok := m[key].(float64); ok && v > 0 {
		return int(v)
	}
	return 0
}

// postChunk ships one chunk of edges as batch-sized binary frames,
// retrying transient failures with backoff. On a 503 the durable
// prefix reported by the server is skipped on the resend; on a
// connection error the whole chunk is resent (the WAL-backed server
// replays nothing it did not acknowledge, and sketch registers are
// idempotent under re-ingest, so the retry is safe at-least-once
// delivery).
func postChunk(baseURL, method string, kind wal.Kind, chunk []stream.Edge, batch int, progressKey string) ([]byte, error) {
	url := strings.TrimRight(baseURL, "/") + "/ingest"
	skip := 0
	var lastErr error
	var lastResp *http.Response // most recent retryable response, for its Retry-After hint
	for attempt := 0; attempt < postMaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(postBackoff(lastResp, attempt-1))
		}
		// (Re-)frame the unacknowledged tail of the chunk.
		var payload []byte
		var frame []byte
		for off := skip; off < len(chunk); off += batch {
			end := off + batch
			if end > len(chunk) {
				end = len(chunk)
			}
			var ferr error
			if frame, ferr = wal.EncodeFrame(frame[:0], kind, chunk[off:end]); ferr != nil {
				return nil, ferr
			}
			payload = append(payload, frame...)
		}
		req, err := http.NewRequest(method, url, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", wal.FrameContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			// Connection-level failure (reset, refused, timeout): transient
			// by assumption; resend the whole unacknowledged tail.
			lastErr, lastResp = fmt.Errorf("post %s: %w", url, err), nil
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			lastErr, lastResp = fmt.Errorf("read response: %w", rerr), nil
			continue
		}
		if resp.StatusCode == http.StatusOK {
			return body, nil
		}
		if !postRetryable(resp.StatusCode) {
			return body, fmt.Errorf("server rejected the upload (status %d): %s",
				resp.StatusCode, strings.TrimSpace(string(body)))
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			skip += appliedPrefix(body, progressKey)
			if skip >= len(chunk) {
				// Everything was durably logged before the failure surfaced.
				return body, nil
			}
		}
		lastErr = fmt.Errorf("server unavailable (status %d): %s", resp.StatusCode, strings.TrimSpace(string(body)))
		lastResp = resp
	}
	return nil, fmt.Errorf("giving up after %d attempts: %w", postMaxAttempts, lastErr)
}

// postFrames drains src through postChunk: chunks of postChunkBatches
// batch-sized frames, each retried independently, so one transient
// blip costs a chunk resend instead of the whole stream.
func postFrames(baseURL, method string, kind wal.Kind, src stream.Source, batch int, progressKey string) (edges int, lastBody []byte, err error) {
	buf := make([]stream.Edge, batch)
	chunk := make([]stream.Edge, 0, batch*postChunkBatches)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		body, perr := postChunk(baseURL, method, kind, chunk, batch, progressKey)
		if perr != nil {
			return perr
		}
		lastBody = body
		edges += len(chunk)
		chunk = chunk[:0]
		return nil
	}
	for {
		n, rerr := stream.ReadBatch(src, buf)
		if n > 0 {
			chunk = append(chunk, buf[:n]...)
			if len(chunk) >= batch*postChunkBatches {
				if err := flush(); err != nil {
					return edges, lastBody, err
				}
			}
		}
		if rerr != nil {
			if !errors.Is(rerr, io.EOF) {
				return edges, lastBody, rerr
			}
			break
		}
		if n < batch {
			break
		}
	}
	return edges, lastBody, flush()
}

// postStream ships the source to baseURL/ingest as binary
// crc/len-framed edge records (Content-Type application/x-lp-edges),
// one frame per -batch edges, chunked into independent requests with
// transient-failure retry (jittered backoff, Retry-After honored, 503
// durable prefixes not resent). The server validates every frame's CRC
// and — when running with -wal-dir — appends the frame bytes to its
// log without re-encoding them.
func postStream(stdout io.Writer, baseURL string, src stream.Source, batch int, directed bool) error {
	kind := wal.KindEdge
	if directed {
		kind = wal.KindArc
	}
	start := time.Now()
	edges, body, err := postFrames(baseURL, http.MethodPost, kind, src, batch, "ingested")
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "posted %d edges in %d-edge frames to %s: %.3fs, %.0f edges/sec\n",
		edges, batch, baseURL, elapsed.Seconds(), float64(edges)/elapsed.Seconds())
	fmt.Fprintf(stdout, "server response: %s\n", strings.TrimSpace(string(body)))
	return nil
}

// postDeletes ships a retraction stream to baseURL/ingest as binary
// KindDelete frames on the DELETE method, with the same chunked retry
// as postStream. The server applies each frame through its engine's
// delete path (400 unless it runs -mode=dynamic).
func postDeletes(stdout io.Writer, baseURL string, src stream.Source, batch int) error {
	start := time.Now()
	edges, body, err := postFrames(baseURL, http.MethodDelete, wal.KindDelete, src, batch, "deleted")
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "posted %d retractions in %d-edge delete frames to %s in %.3fs\n",
		edges, batch, baseURL, time.Since(start).Seconds())
	fmt.Fprintf(stdout, "server response: %s\n", strings.TrimSpace(string(body)))
	return nil
}

// printPair prints the standard pair report; directed pairs are
// rendered as the candidate arc u -> v.
func printPair(w io.Writer, e linkpred.Engine, directed bool, u, v uint64) {
	j, _ := e.Score(linkpred.Jaccard, u, v)
	cn, _ := e.Score(linkpred.CommonNeighbors, u, v)
	aa, _ := e.Score(linkpred.AdamicAdar, u, v)
	arrow := ","
	if directed {
		arrow = " ->"
	}
	fmt.Fprintf(w, "(%d%s %d): jaccard=%.4f common-neighbors=%.2f adamic-adar=%.3f\n",
		u, arrow, v, j, cn, aa)
}

// parseMeasure delegates to the library's shared name→Measure table, so
// the CLI accepts exactly the measures the predictors dispatch.
func parseMeasure(s string) (linkpred.Measure, error) {
	return linkpred.ParseMeasure(s)
}

func splitNonEmpty(s, sep string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, sep)
}
