// Command lpstream runs the sketch-based streaming link predictor over an
// edge-stream file and answers link-prediction queries.
//
// Usage:
//
//	lpstream -in stream.txt -k 128 -pairs "3:17,42:99"
//	lpstream -in stream.bin -binary -k 256 -top 42 -topk 10
//	cat queries.txt | lpstream -in stream.txt          # "u v" per line
//
// After ingesting the stream it prints a summary, then the estimated
// Jaccard / common-neighbor / Adamic–Adar values for each query pair
// given via -pairs, the top-k candidates for the -top vertex (candidates
// are the vertices seen in the stream), and finally any "u v" query pairs
// read from stdin if it is not a terminal.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	linkpred "linkpred"
	"linkpred/internal/monitor"
	"linkpred/internal/stream"
)

func main() {
	// Stdin queries only when something is piped in.
	var queries io.Reader
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice == 0 {
		queries = os.Stdin
	}
	if err := run(os.Args[1:], os.Stdout, queries); err != nil {
		fmt.Fprintln(os.Stderr, "lpstream:", err)
		os.Exit(1)
	}
}

// run executes the CLI against the given flags, output writer, and
// optional "u v"-per-line query reader (nil = no piped queries).
func run(args []string, stdout io.Writer, queries io.Reader) error {
	fs := flag.NewFlagSet("lpstream", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "input stream file (required)")
		binary   = fs.Bool("binary", false, "input is in the binary format")
		k        = fs.Int("k", 128, "sketch registers per vertex")
		seed     = fs.Uint64("seed", 42, "hash seed")
		distinct = fs.Bool("distinct-degrees", false, "use KMV distinct-degree estimation (for streams with duplicate edges)")
		pairs    = fs.String("pairs", "", "comma-separated query pairs, e.g. \"3:17,42:99\"")
		top      = fs.Uint64("top", 0, "vertex to rank candidates for (0 = off)")
		topk     = fs.Int("topk", 10, "number of candidates to report for -top")
		measure  = fs.String("measure", "adamic-adar", "ranking measure: jaccard | common-neighbors | adamic-adar")
		directed = fs.Bool("directed", false, "treat edges as directed arcs (u -> v); queries score candidate arcs")
		profile  = fs.Bool("profile", false, "also print a constant-space stream profile (distinct edges, duplicate rate, heavy hitters)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	cfg := linkpred.Config{K: *k, Seed: *seed, DistinctDegrees: *distinct}
	var p *linkpred.Predictor
	var dp *linkpred.Directed
	var err error
	if *directed {
		dp, err = linkpred.NewDirected(cfg)
	} else {
		p, err = linkpred.New(cfg)
	}
	if err != nil {
		return err
	}
	var mon *monitor.StreamMonitor
	if *profile {
		if mon, err = monitor.New(monitor.Config{Seed: *seed}); err != nil {
			return err
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		return fmt.Errorf("open stream: %w", err)
	}
	defer f.Close()
	var src stream.Source
	if *binary {
		src = stream.NewBinaryReader(f)
	} else {
		src = stream.NewTextReader(f)
	}

	// Track the vertex universe for -top candidate generation.
	var vertices []uint64
	seen := make(map[uint64]struct{})
	note := func(u uint64) {
		if _, ok := seen[u]; !ok {
			seen[u] = struct{}{}
			vertices = append(vertices, u)
		}
	}
	edges := 0
	err = stream.ForEach(src, func(e stream.Edge) error {
		if dp != nil {
			dp.Observe(e.U, e.V)
		} else {
			p.Observe(e.U, e.V)
		}
		if mon != nil {
			mon.ProcessEdge(e)
		}
		note(e.U)
		note(e.V)
		edges++
		return nil
	})
	if err != nil {
		return err
	}
	if dp != nil {
		fmt.Fprintf(stdout, "ingested %d arcs, %d vertices; sketch memory %.1f MiB (k=%d, directed)\n",
			edges, dp.NumVertices(), float64(dp.MemoryBytes())/(1<<20), *k)
	} else {
		fmt.Fprintf(stdout, "ingested %d edges, %d vertices; sketch memory %.1f MiB (k=%d)\n",
			edges, p.NumVertices(), float64(p.MemoryBytes())/(1<<20), *k)
	}
	if mon != nil {
		r := mon.Report(5)
		fmt.Fprintf(stdout, "stream profile: %s (profile memory %.2f MiB)\n", r, float64(mon.MemoryBytes())/(1<<20))
		for i, h := range r.TopVertices {
			fmt.Fprintf(stdout, "  top vertex %d: id %d, ~%d arrivals (±%d)\n", i+1, h.Key, h.Count, h.Err)
		}
	}

	for _, spec := range splitNonEmpty(*pairs, ",") {
		uv := strings.SplitN(spec, ":", 2)
		if len(uv) != 2 {
			return fmt.Errorf("bad pair %q (want u:v)", spec)
		}
		u, err1 := strconv.ParseUint(strings.TrimSpace(uv[0]), 10, 64)
		v, err2 := strconv.ParseUint(strings.TrimSpace(uv[1]), 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad pair %q: %v %v", spec, err1, err2)
		}
		if dp != nil {
			printArc(stdout, dp, u, v)
		} else {
			printPair(stdout, p, u, v)
		}
	}

	if *top != 0 && dp != nil {
		return fmt.Errorf("-top ranking is not supported in -directed mode (use -pairs to score candidate arcs)")
	}
	if *top != 0 {
		m, err := parseMeasure(*measure)
		if err != nil {
			return err
		}
		cands, err := p.TopK(m, *top, vertices, *topk)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "top %d candidates for vertex %d by %s:\n", len(cands), *top, m)
		for i, c := range cands {
			fmt.Fprintf(stdout, "  %2d. vertex %-12d score %.4f\n", i+1, c.V, c.Score)
		}
	}

	// Piped queries, one "u v" pair per line.
	if queries != nil {
		sc := bufio.NewScanner(queries)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) != 2 {
				continue
			}
			u, err1 := strconv.ParseUint(fields[0], 10, 64)
			v, err2 := strconv.ParseUint(fields[1], 10, 64)
			if err1 != nil || err2 != nil {
				continue
			}
			if dp != nil {
				printArc(stdout, dp, u, v)
			} else {
				printPair(stdout, p, u, v)
			}
		}
		if err := sc.Err(); err != nil && err != io.EOF {
			return fmt.Errorf("read queries: %w", err)
		}
	}
	return nil
}

func printArc(w io.Writer, d *linkpred.Directed, u, v uint64) {
	fmt.Fprintf(w, "(%d -> %d): jaccard=%.4f common-neighbors=%.2f adamic-adar=%.3f\n",
		u, v, d.Jaccard(u, v), d.CommonNeighbors(u, v), d.AdamicAdar(u, v))
}

func printPair(w io.Writer, p *linkpred.Predictor, u, v uint64) {
	fmt.Fprintf(w, "(%d, %d): jaccard=%.4f common-neighbors=%.2f adamic-adar=%.3f\n",
		u, v, p.Jaccard(u, v), p.CommonNeighbors(u, v), p.AdamicAdar(u, v))
}

func parseMeasure(s string) (linkpred.Measure, error) {
	switch s {
	case "jaccard":
		return linkpred.Jaccard, nil
	case "common-neighbors":
		return linkpred.CommonNeighbors, nil
	case "adamic-adar":
		return linkpred.AdamicAdar, nil
	default:
		return 0, fmt.Errorf("unknown measure %q", s)
	}
}

func splitNonEmpty(s, sep string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, sep)
}
