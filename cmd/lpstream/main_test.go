package main

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	linkpred "linkpred"
	"linkpred/internal/server"
)

func TestParseMeasure(t *testing.T) {
	cases := map[string]linkpred.Measure{
		"jaccard":                 linkpred.Jaccard,
		"common-neighbors":        linkpred.CommonNeighbors,
		"adamic-adar":             linkpred.AdamicAdar,
		"resource-allocation":     linkpred.ResourceAllocation,
		"preferential-attachment": linkpred.PreferentialAttachment,
		"cosine":                  linkpred.Cosine,
	}
	for name, want := range cases {
		got, err := parseMeasure(name)
		if err != nil || got != want {
			t.Errorf("parseMeasure(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseMeasure("zebra"); err == nil {
		t.Error("unknown measure should error")
	}
}

func TestSplitNonEmpty(t *testing.T) {
	if got := splitNonEmpty("", ","); got != nil {
		t.Errorf("empty split = %v, want nil", got)
	}
	got := splitNonEmpty("a,b,c", ",")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("split = %v", got)
	}
	if got := splitNonEmpty("solo", ","); len(got) != 1 || got[0] != "solo" {
		t.Errorf("single-element split = %v", got)
	}
}

func writeFixtureStream(t *testing.T) string {
	t.Helper()
	path := t.TempDir() + "/stream.txt"
	var b strings.Builder
	// Vertices 1 and 2 share neighbors {10..19}.
	for w := 10; w < 20; w++ {
		fmt.Fprintf(&b, "1 %d\n2 %d\n", w, w)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeFixtureStream(t)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-k", "64", "-pairs", "1:2", "-top", "1", "-topk", "3"}, &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ingested 20 edges, 12 vertices") {
		t.Errorf("missing summary:\n%s", s)
	}
	if !strings.Contains(s, "(1, 2): jaccard=1.0000") {
		t.Errorf("missing pair estimate:\n%s", s)
	}
	if !strings.Contains(s, "top 3 candidates for vertex 1") {
		t.Errorf("missing top-k:\n%s", s)
	}
}

func TestRunDirectedAndProfile(t *testing.T) {
	path := writeFixtureStream(t)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-directed", "-profile", "-pairs", "1:10,10:1"}, &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "directed") || !strings.Contains(s, "stream profile:") {
		t.Errorf("missing directed/profile output:\n%s", s)
	}
	if !strings.Contains(s, "(1 -> 10):") || !strings.Contains(s, "(10 -> 1):") {
		t.Errorf("missing arc estimates:\n%s", s)
	}
}

func TestRunDirectedTopK(t *testing.T) {
	// -top used to be rejected in -directed mode; the unified engine
	// supports TopK on every mode, ranking candidate arcs u -> v.
	path := writeFixtureStream(t)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-directed", "-top", "1", "-topk", "3"}, &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "top 3 candidates for vertex 1") {
		t.Errorf("missing directed top-k:\n%s", out.String())
	}
}

func TestRunPipedQueries(t *testing.T) {
	path := writeFixtureStream(t)
	var out bytes.Buffer
	queries := strings.NewReader("1 2\nnot a pair\n1 10\n")
	if err := run([]string{"-in", path}, &out, queries); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "jaccard="); got != 2 {
		t.Errorf("piped queries produced %d estimates, want 2:\n%s", got, out.String())
	}
}

func TestRunErrorCases(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out, nil); err == nil {
		t.Error("missing -in should error")
	}
	if err := run([]string{"-in", "/no/such/file"}, &out, nil); err == nil {
		t.Error("unreadable file should error")
	}
	path := writeFixtureStream(t)
	if err := run([]string{"-in", path, "-pairs", "nonsense"}, &out, nil); err == nil {
		t.Error("bad pair spec should error")
	}
	if err := run([]string{"-in", path, "-directed", "-top", "1", "-measure", "zebra"}, &out, nil); err == nil {
		t.Error("bad measure should error in -directed mode too")
	}
	if err := run([]string{"-in", path, "-top", "1", "-measure", "zebra"}, &out, nil); err == nil {
		t.Error("bad measure should error")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	// A bigger fixture so parallel ingest crosses several batches.
	path := t.TempDir() + "/big.txt"
	var b strings.Builder
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&b, "%d %d\n", i%97, (i*7)%89)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var seq, par bytes.Buffer
	if err := run([]string{"-in", path, "-k", "64", "-pairs", "3:17,5:40", "-top", "3", "-topk", "5"}, &seq, nil); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-k", "64", "-parallel", "4", "-batch", "256",
		"-pairs", "3:17,5:40", "-top", "3", "-topk", "5"}, &par, nil); err != nil {
		t.Fatal(err)
	}
	// Identical estimates in both modes; only the ingest line (timing)
	// may differ.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "ingest:") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(seq.String()) != strip(par.String()) {
		t.Errorf("parallel output diverges from sequential:\n--- sequential:\n%s--- parallel:\n%s", seq.String(), par.String())
	}
	if !strings.Contains(par.String(), "edges/sec (parallel=4, batch=256)") {
		t.Errorf("missing ingest rate line:\n%s", par.String())
	}
}

func TestRunParallelDirected(t *testing.T) {
	path := writeFixtureStream(t)
	var seq, par bytes.Buffer
	if err := run([]string{"-in", path, "-directed", "-pairs", "1:10,10:1"}, &seq, nil); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-directed", "-parallel", "2", "-batch", "8", "-pairs", "1:10,10:1"}, &par, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ingested 20 arcs, 12 vertices", "(1 -> 10):", "(10 -> 1):"} {
		if !strings.Contains(par.String(), want) {
			t.Errorf("parallel directed output missing %q:\n%s", want, par.String())
		}
	}
	// Arc estimates must match the sequential run exactly.
	for _, line := range strings.Split(seq.String(), "\n") {
		if strings.HasPrefix(line, "(") && !strings.Contains(par.String(), line) {
			t.Errorf("parallel directed missing estimate line %q", line)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	path := writeFixtureStream(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-parallel", "0"}, &out, nil); err == nil {
		t.Error("-parallel 0 should error")
	}
	if err := run([]string{"-in", path, "-batch", "0"}, &out, nil); err == nil {
		t.Error("-batch 0 should error")
	}
}

// walFixture writes n deterministic edge lines to dir/name.
func walFixture(t *testing.T, dir, name string, n int) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d %d\n", i%17, (i*7+3)%23)
	}
	path := dir + "/" + name
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWALResume(t *testing.T) {
	dir := t.TempDir()
	full := walFixture(t, dir, "full.txt", 40)
	prefix := walFixture(t, dir, "prefix.txt", 25)
	wdir := dir + "/wal"

	// Reference: one uninterrupted run over the full stream.
	var ref bytes.Buffer
	if err := run([]string{"-in", full, "-k", "32", "-pairs", "1:3", "-batch", "8"}, &ref, nil); err != nil {
		t.Fatal(err)
	}

	// "Crashed" run: only the first 25 edges got through before the
	// process died; its completed prefix is durable in the WAL.
	var out1 bytes.Buffer
	err := run([]string{"-in", prefix, "-k", "32", "-batch", "8",
		"-wal-dir", wdir, "-wal-fsync", "always"}, &out1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out1.String(), "wal: snapshot at seq 25") {
		t.Errorf("first run should checkpoint at seq 25:\n%s", out1.String())
	}

	// Resume over the full stream: the durable 25 are skipped, the
	// remaining 15 ingested, and the estimates match the reference.
	var out2 bytes.Buffer
	err = run([]string{"-in", full, "-k", "32", "-pairs", "1:3", "-batch", "8",
		"-wal-dir", wdir, "-wal-fsync", "always"}, &out2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := out2.String()
	if !strings.Contains(s, "resuming from "+wdir+": 25 edges durable") {
		t.Errorf("missing resume line:\n%s", s)
	}
	if !strings.Contains(s, "ingested 15 edges") {
		t.Errorf("resume should ingest only the tail:\n%s", s)
	}
	if !strings.Contains(s, "wal: snapshot at seq 40") {
		t.Errorf("resume should checkpoint at seq 40:\n%s", s)
	}
	wantPair := ""
	for _, line := range strings.Split(ref.String(), "\n") {
		if strings.HasPrefix(line, "(1, 3):") {
			wantPair = line
		}
	}
	if wantPair == "" || !strings.Contains(s, wantPair) {
		t.Errorf("resumed estimates differ from uninterrupted run:\nwant %q in\n%s", wantPair, s)
	}
}

func TestRunWALParallelResume(t *testing.T) {
	dir := t.TempDir()
	full := walFixture(t, dir, "full.txt", 60)
	prefix := walFixture(t, dir, "prefix.txt", 30)
	wdir := dir + "/wal"

	var out1 bytes.Buffer
	err := run([]string{"-in", prefix, "-k", "32", "-parallel", "3", "-batch", "8",
		"-wal-dir", wdir}, &out1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	err = run([]string{"-in", full, "-k", "32", "-parallel", "3", "-batch", "8",
		"-pairs", "1:3", "-wal-dir", wdir}, &out2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "ingested 30 edges") {
		t.Errorf("parallel resume should ingest only the tail:\n%s", out2.String())
	}

	// The resumed sharded model answers like a fresh full run.
	var ref bytes.Buffer
	if err := run([]string{"-in", full, "-k", "32", "-parallel", "3", "-pairs", "1:3"}, &ref, nil); err != nil {
		t.Fatal(err)
	}
	want := ""
	for _, line := range strings.Split(ref.String(), "\n") {
		if strings.HasPrefix(line, "(1, 3):") {
			want = line
		}
	}
	if want == "" || !strings.Contains(out2.String(), want) {
		t.Errorf("resumed estimates differ:\nwant %q in\n%s", want, out2.String())
	}
}

func TestRunWALMismatchErrors(t *testing.T) {
	dir := t.TempDir()
	in := walFixture(t, dir, "in.txt", 20)
	wdir := dir + "/wal"
	var out bytes.Buffer
	if err := run([]string{"-in", in, "-k", "32", "-wal-dir", wdir}, &out, nil); err != nil {
		t.Fatal(err)
	}
	// Same log, different orientation: the snapshot cannot be loaded
	// into a directed model.
	if err := run([]string{"-in", in, "-k", "32", "-directed", "-wal-dir", wdir}, &out, nil); err == nil {
		t.Error("directed resume of an undirected log should error")
	}
	// Same log, different sketch config: refuse rather than mix.
	err := run([]string{"-in", in, "-k", "64", "-wal-dir", wdir}, &out, nil)
	if err == nil || !strings.Contains(err.Error(), "-k 32") {
		t.Errorf("resume with different -k should name the snapshot flags, got %v", err)
	}
}

func TestRunPostBinaryFrames(t *testing.T) {
	pred, err := linkpred.NewConcurrent(linkpred.Config{K: 64, Seed: 42}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(pred))
	defer ts.Close()

	in := writeFixtureStream(t)
	var out bytes.Buffer
	if err := run([]string{"-in", in, "-post", ts.URL, "-batch", "7"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	if pred.NumEdges() != 20 {
		t.Errorf("server predictor has %d edges, want 20", pred.NumEdges())
	}
	if !strings.Contains(out.String(), "posted 20 edges") {
		t.Errorf("missing post summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `"ingested": 20`) && !strings.Contains(out.String(), `"ingested":20`) {
		t.Errorf("missing server ack:\n%s", out.String())
	}
}

// deletesFixture writes a stream of kept + doomed edges and the
// matching retraction file; the kept edges are exactly
// writeFixtureStream's.
func deletesFixture(t *testing.T) (full, del string) {
	t.Helper()
	dir := t.TempDir()
	var b strings.Builder
	for w := 10; w < 20; w++ {
		fmt.Fprintf(&b, "1 %d\n2 %d\n", w, w)
	}
	for w := 10; w < 15; w++ {
		fmt.Fprintf(&b, "3 %d\n", w) // doomed
	}
	full = dir + "/full.txt"
	if err := os.WriteFile(full, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var d strings.Builder
	for w := 10; w < 15; w++ {
		fmt.Fprintf(&d, "3 %d\n", w)
	}
	d.WriteString("7 8\n") // never inserted: refused, not an error
	del = dir + "/del.txt"
	if err := os.WriteFile(del, []byte(d.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return full, del
}

// pairLines extracts the "(u, v): ..." estimate lines from a run's
// output for comparison across runs.
func pairLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "(") {
			out = append(out, line)
		}
	}
	return out
}

// TestRunDeletes: ingest-then-retract must leave the store register-
// identical to one that never saw the doomed edges, visible as equal
// pair estimates.
func TestRunDeletes(t *testing.T) {
	full, del := deletesFixture(t)
	kept := writeFixtureStream(t)
	empty := t.TempDir() + "/empty.txt"
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	// Reference: the kept edges only, same engine mode (an empty
	// retraction file still selects the dynamic engine).
	var ref bytes.Buffer
	if err := run([]string{"-in", kept, "-k", "64", "-deletes", empty, "-pairs", "1:2,1:3"}, &ref, nil); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", full, "-k", "64", "-deletes", del, "-pairs", "1:2,1:3"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "retracted 6 edges (5 applied, 1 unknown or already gone)") {
		t.Errorf("missing retraction summary:\n%s", s)
	}
	want, got := pairLines(ref.String()), pairLines(s)
	if len(want) != 2 || len(got) != 2 {
		t.Fatalf("pair lines: ref %v, run %v", want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("estimate after retraction differs from never-inserted reference:\n  ref: %s\n  got: %s", want[i], got[i])
		}
	}
}

// TestRunDeletesWALResume: a completed insert+retract run is fully
// durable; rerunning with the same flags skips both phases and serves
// identical estimates.
func TestRunDeletesWALResume(t *testing.T) {
	full, del := deletesFixture(t)
	wdir := t.TempDir() + "/wal"
	flags := []string{"-in", full, "-k", "32", "-deletes", del, "-batch", "4",
		"-pairs", "1:2", "-wal-dir", wdir, "-wal-fsync", "always"}

	var out1 bytes.Buffer
	if err := run(flags, &out1, nil); err != nil {
		t.Fatal(err)
	}
	// 25 inserts + 6 delete ops share one sequence space.
	if !strings.Contains(out1.String(), "wal: snapshot at seq 31") {
		t.Errorf("first run should checkpoint at seq 31:\n%s", out1.String())
	}

	var out2 bytes.Buffer
	if err := run(flags, &out2, nil); err != nil {
		t.Fatal(err)
	}
	s := out2.String()
	if !strings.Contains(s, "resuming from "+wdir+": 31 edges durable") {
		t.Errorf("missing resume line:\n%s", s)
	}
	if !strings.Contains(s, "ingested 0 edges") {
		t.Errorf("resume should skip all inserts:\n%s", s)
	}
	if !strings.Contains(s, "retracted 0 edges") {
		t.Errorf("resume should skip all retractions:\n%s", s)
	}
	w1, w2 := pairLines(out1.String()), pairLines(s)
	if len(w1) != 1 || len(w2) != 1 || w1[0] != w2[0] {
		t.Errorf("resumed estimates differ: %v vs %v", w1, w2)
	}
}

// TestRunPostDeletes ships retractions to a live server as binary
// delete frames on DELETE /ingest.
func TestRunPostDeletes(t *testing.T) {
	eng, err := linkpred.NewEngine(linkpred.EngineSpec{
		Mode: linkpred.ModeDynamic, Config: linkpred.Config{K: 64, Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(eng))
	defer ts.Close()

	full, del := deletesFixture(t)
	var out bytes.Buffer
	if err := run([]string{"-in", full, "-post", ts.URL, "-deletes", del, "-batch", "7"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	if eng.NumEdges() != 20 {
		t.Errorf("server has %d edges after posted retractions, want 20", eng.NumEdges())
	}
	s := out.String()
	if !strings.Contains(s, "posted 25 edges") || !strings.Contains(s, "posted 6 retractions") {
		t.Errorf("missing post summaries:\n%s", s)
	}
	if !strings.Contains(s, `"applied": 5`) && !strings.Contains(s, `"applied":5`) {
		t.Errorf("missing server delete ack:\n%s", s)
	}
}

func TestRunDeletesFlagValidation(t *testing.T) {
	full, del := deletesFixture(t)
	var out bytes.Buffer
	if err := run([]string{"-in", full, "-deletes", del, "-directed"}, &out, nil); err == nil {
		t.Error("-deletes with -directed should error")
	}
	if err := run([]string{"-in", full, "-deletes", del, "-parallel", "2"}, &out, nil); err == nil {
		t.Error("-deletes with -parallel should error")
	}
}
