package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	linkpred "linkpred"
)

func TestParseMeasure(t *testing.T) {
	cases := map[string]linkpred.Measure{
		"jaccard":          linkpred.Jaccard,
		"common-neighbors": linkpred.CommonNeighbors,
		"adamic-adar":      linkpred.AdamicAdar,
	}
	for name, want := range cases {
		got, err := parseMeasure(name)
		if err != nil || got != want {
			t.Errorf("parseMeasure(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseMeasure("zebra"); err == nil {
		t.Error("unknown measure should error")
	}
}

func TestSplitNonEmpty(t *testing.T) {
	if got := splitNonEmpty("", ","); got != nil {
		t.Errorf("empty split = %v, want nil", got)
	}
	got := splitNonEmpty("a,b,c", ",")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("split = %v", got)
	}
	if got := splitNonEmpty("solo", ","); len(got) != 1 || got[0] != "solo" {
		t.Errorf("single-element split = %v", got)
	}
}

func writeFixtureStream(t *testing.T) string {
	t.Helper()
	path := t.TempDir() + "/stream.txt"
	var b strings.Builder
	// Vertices 1 and 2 share neighbors {10..19}.
	for w := 10; w < 20; w++ {
		fmt.Fprintf(&b, "1 %d\n2 %d\n", w, w)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeFixtureStream(t)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-k", "64", "-pairs", "1:2", "-top", "1", "-topk", "3"}, &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ingested 20 edges, 12 vertices") {
		t.Errorf("missing summary:\n%s", s)
	}
	if !strings.Contains(s, "(1, 2): jaccard=1.0000") {
		t.Errorf("missing pair estimate:\n%s", s)
	}
	if !strings.Contains(s, "top 3 candidates for vertex 1") {
		t.Errorf("missing top-k:\n%s", s)
	}
}

func TestRunDirectedAndProfile(t *testing.T) {
	path := writeFixtureStream(t)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-directed", "-profile", "-pairs", "1:10,10:1"}, &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "directed") || !strings.Contains(s, "stream profile:") {
		t.Errorf("missing directed/profile output:\n%s", s)
	}
	if !strings.Contains(s, "(1 -> 10):") || !strings.Contains(s, "(10 -> 1):") {
		t.Errorf("missing arc estimates:\n%s", s)
	}
}

func TestRunPipedQueries(t *testing.T) {
	path := writeFixtureStream(t)
	var out bytes.Buffer
	queries := strings.NewReader("1 2\nnot a pair\n1 10\n")
	if err := run([]string{"-in", path}, &out, queries); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "jaccard="); got != 2 {
		t.Errorf("piped queries produced %d estimates, want 2:\n%s", got, out.String())
	}
}

func TestRunErrorCases(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out, nil); err == nil {
		t.Error("missing -in should error")
	}
	if err := run([]string{"-in", "/no/such/file"}, &out, nil); err == nil {
		t.Error("unreadable file should error")
	}
	path := writeFixtureStream(t)
	if err := run([]string{"-in", path, "-pairs", "nonsense"}, &out, nil); err == nil {
		t.Error("bad pair spec should error")
	}
	if err := run([]string{"-in", path, "-directed", "-top", "1"}, &out, nil); err == nil {
		t.Error("-top with -directed should error")
	}
	if err := run([]string{"-in", path, "-top", "1", "-measure", "zebra"}, &out, nil); err == nil {
		t.Error("bad measure should error")
	}
}
