package linkpred_test

import (
	"math"
	"testing"

	linkpred "linkpred"
)

func TestDirectedFacade(t *testing.T) {
	if _, err := linkpred.NewDirected(linkpred.Config{K: 0}); err == nil {
		t.Error("K=0 should error")
	}
	if _, err := linkpred.NewDirected(linkpred.Config{K: 8, EnableBiased: true}); err == nil {
		t.Error("EnableBiased should be rejected")
	}
	d, err := linkpred.NewDirected(linkpred.Config{K: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Config().K != 128 {
		t.Error("config not retained")
	}
	// Funnel: 1 → {10..29} → 2.
	for w := uint64(10); w < 30; w++ {
		d.Observe(1, w)
		d.Observe(w, 2)
	}
	if j := d.Jaccard(1, 2); j != 1 {
		t.Errorf("J(1→2) = %v, want 1", j)
	}
	if j := d.Jaccard(2, 1); j != 0 {
		t.Errorf("J(2→1) = %v, want 0 (asymmetry)", j)
	}
	if cn := d.CommonNeighbors(1, 2); math.Abs(cn-20) > 2 {
		t.Errorf("CN(1→2) = %v, want ≈20", cn)
	}
	if aa := d.AdamicAdar(1, 2); aa <= 0 {
		t.Errorf("AA(1→2) = %v, want > 0", aa)
	}
	if d.OutDegree(1) != 20 || d.InDegree(1) != 0 {
		t.Errorf("degrees of 1 = %v/%v, want 20/0", d.OutDegree(1), d.InDegree(1))
	}
	if d.NumArcs() != 40 || d.NumVertices() != 22 {
		t.Errorf("counts = %d arcs, %d vertices", d.NumArcs(), d.NumVertices())
	}
	if !d.Seen(10) || d.Seen(99) {
		t.Error("Seen misreports")
	}
	if d.MemoryBytes() <= 0 {
		t.Error("memory accounting broken")
	}
	// ObserveEdge path.
	d.ObserveEdge(linkpred.Edge{U: 50, V: 51, T: 7})
	if !d.Seen(50) {
		t.Error("ObserveEdge did not ingest")
	}
}

func TestConcurrentDirectedFacade(t *testing.T) {
	if _, err := linkpred.NewConcurrentDirected(linkpred.Config{K: 8}, 0); err == nil {
		t.Error("shards=0 should error")
	}
	if _, err := linkpred.NewConcurrentDirected(linkpred.Config{K: 8, EnableBiased: true}, 2); err == nil {
		t.Error("EnableBiased should be rejected")
	}
	c, err := linkpred.NewConcurrentDirected(linkpred.Config{K: 128, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumShards() != 4 || c.Config().K != 128 {
		t.Error("accessors wrong")
	}
	// Funnel: 1 → {10..29} → 2, matching the single-threaded Directed.
	d, _ := linkpred.NewDirected(linkpred.Config{K: 128, Seed: 1})
	for w := uint64(10); w < 30; w++ {
		c.Observe(1, w)
		c.Observe(w, 2)
		d.Observe(1, w)
		d.Observe(w, 2)
	}
	if c.Jaccard(1, 2) != d.Jaccard(1, 2) {
		t.Error("concurrent directed diverges from directed")
	}
	if c.CommonNeighbors(1, 2) != d.CommonNeighbors(1, 2) {
		t.Error("CN diverges")
	}
	if math.Abs(c.AdamicAdar(1, 2)-d.AdamicAdar(1, 2)) > 1e-12 {
		t.Error("AA diverges")
	}
	if c.OutDegree(1) != 20 || c.InDegree(2) != 20 {
		t.Error("degrees wrong")
	}
	if c.NumArcs() != 40 || c.NumVertices() != 22 || !c.Seen(10) || c.MemoryBytes() <= 0 {
		t.Error("accounting wrong")
	}
	c.ObserveEdge(linkpred.Edge{U: 50, V: 51, T: 1})
	if !c.Seen(50) {
		t.Error("ObserveEdge did not ingest")
	}
}
