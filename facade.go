package linkpred

import (
	"fmt"
	"io"

	"linkpred/internal/core"
	"linkpred/internal/hashing"
	"linkpred/internal/stream"
)

// facade is the shared engine core behind every public predictor type.
// Predictor, Concurrent, Directed, ConcurrentDirected, and Windowed all
// embed a facade instantiated with their concrete store; measure
// dispatch, Score/ScoreBatch/TopK, the stats gauges, and persistence
// live here once instead of once per facade. The public types add only
// what is genuinely theirs: constructors, capability methods (shard
// counts, window introspection, directed side-degrees), and the
// ablation surface (biased sketches, triangles, LSH).
//
// The store's own thread-safety contract carries through unchanged:
// facades over sharded stores are safe for concurrent use, facades over
// single-writer stores are not (wrap in Synchronized or serialize
// externally).
type facade[S core.Store] struct {
	store S
	cfg   Config
}

// coreConfig maps the public Config onto the core store configuration.
// Callers zero fields their mode does not support before constructing
// the store (e.g. sharded modes drop TrackTriangles).
func coreConfig(cfg Config) core.Config {
	kind := hashing.KindMixed
	if cfg.TabulationHashing {
		kind = hashing.KindTabulation
	}
	degrees := core.DegreeArrivals
	if cfg.DistinctDegrees {
		degrees = core.DegreeDistinctKMV
	}
	cc := core.Config{
		K:              cfg.K,
		Seed:           cfg.Seed,
		Hash:           kind,
		Degrees:        degrees,
		EnableBiased:   cfg.EnableBiased,
		TrackTriangles: cfg.TrackTriangles,
	}
	for i, t := range cfg.Tiers {
		cc.Tiers[i] = core.Tier{K: t.K, PromoteAt: t.PromoteAt}
	}
	return cc
}

// configFromCore inverts coreConfig for the Load* constructors: the
// public Config is re-derived from the loaded store's image.
func configFromCore(cc core.Config) Config {
	cfg := Config{
		K:                 cc.K,
		Seed:              cc.Seed,
		TabulationHashing: cc.Hash == hashing.KindTabulation,
		DistinctDegrees:   cc.Degrees == core.DegreeDistinctKMV,
		EnableBiased:      cc.EnableBiased,
		TrackTriangles:    cc.TrackTriangles,
	}
	for i, t := range cc.Tiers {
		cfg.Tiers[i] = Tier{K: t.K, PromoteAt: t.PromoteAt}
	}
	return cfg
}

// Config returns the configuration the predictor was built with.
func (f *facade[S]) Config() Config { return f.cfg }

// ObserveEdge folds a timestamped edge (arc, on directed predictors)
// into the sketches.
func (f *facade[S]) ObserveEdge(e Edge) {
	f.store.Ingest(stream.Edge{U: e.U, V: e.V, T: e.T})
}

// ObserveEdges folds a batch of edges into the sketches, equivalent to
// calling ObserveEdge on each in order. On sharded stores the batch
// path hashes each distinct endpoint once outside any lock and takes
// each shard lock once per batch, making this much faster than per-edge
// calls; single-writer stores gain API symmetry. The resulting sketches
// are register-identical to per-edge ingest of the same edges (MinHash
// register updates are pointwise minima, which commute and are
// idempotent).
func (f *facade[S]) ObserveEdges(edges []Edge) {
	buf := toStreamEdges(edges)
	if bi, ok := any(f.store).(core.BatchIngester); ok {
		bi.IngestBatch(*buf)
	} else {
		for _, e := range *buf {
			f.store.Ingest(e)
		}
	}
	putStreamEdges(buf)
}

// Jaccard returns the estimated Jaccard coefficient of (u, v) in
// [0, 1] — |N_out(u) ∩ N_in(v)| / |N_out(u) ∪ N_in(v)| for the
// candidate arc u → v on directed predictors. Pairs involving
// never-observed vertices score 0.
func (f *facade[S]) Jaccard(u, v uint64) float64 {
	s, _ := f.store.Estimate(core.QueryJaccard, u, v)
	return s
}

// CommonNeighbors returns the estimated number of common neighbors of
// (u, v) — directed two-path midpoints |{w : u → w → v}| on directed
// predictors.
func (f *facade[S]) CommonNeighbors(u, v uint64) float64 {
	s, _ := f.store.Estimate(core.QueryCommonNeighbors, u, v)
	return s
}

// AdamicAdar returns the estimated Adamic–Adar index of (u, v) using
// the matched-register estimator, weighting common neighbors by
// 1/ln d(w) under the store's live degree estimates.
func (f *facade[S]) AdamicAdar(u, v uint64) float64 {
	s, _ := f.store.Estimate(core.QueryAdamicAdar, u, v)
	return s
}

// ResourceAllocation returns the estimated resource-allocation index
// RA(u, v) = Σ_{w ∈ N(u)∩N(v)} 1/d(w).
func (f *facade[S]) ResourceAllocation(u, v uint64) float64 {
	s, _ := f.store.Estimate(core.QueryResourceAllocation, u, v)
	return s
}

// PreferentialAttachment returns the degree product d(u)·d(v) under the
// predictor's degree estimates — d_out(u)·d_in(v) on directed
// predictors.
func (f *facade[S]) PreferentialAttachment(u, v uint64) float64 {
	s, _ := f.store.Estimate(core.QueryPreferentialAttachment, u, v)
	return s
}

// Cosine returns the estimated cosine (Salton) similarity
// |N(u)∩N(v)| / sqrt(d(u)·d(v)).
func (f *facade[S]) Cosine(u, v uint64) float64 {
	s, _ := f.store.Estimate(core.QueryCosine, u, v)
	return s
}

// Score returns the estimate of the given measure for (u, v) — for the
// candidate arc u → v on directed predictors. Every library measure is
// supported on every predictor type.
func (f *facade[S]) Score(m Measure, u, v uint64) (float64, error) {
	qm, err := queryMeasure(m)
	if err != nil {
		return 0, err
	}
	return f.store.Estimate(qm, u, v)
}

// scoreBatchCore scores candidates through the store's batched path
// when it has one (core.BatchScorer), falling back to per-pair
// Estimate calls otherwise. Both produce bit-identical scores on a
// quiescent store; the batch path amortizes locks, the source's sketch
// resolution, and the weighted measures' midpoint degree lookups over
// the whole batch.
func (f *facade[S]) scoreBatchCore(qm core.QueryMeasure, u uint64, candidates []uint64, out []float64) ([]float64, error) {
	if bs, ok := any(f.store).(core.BatchScorer); ok {
		return bs.ScoreBatch(qm, u, candidates, out)
	}
	if cap(out) < len(candidates) {
		out = make([]float64, len(candidates))
	}
	out = out[:len(candidates)]
	for i, v := range candidates {
		s, err := f.store.Estimate(qm, u, v)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// ScoreBatch scores every candidate against u under the given measure
// in one batched pass, returning scores aligned with candidates. It is
// equivalent to calling Score per pair but computes shared work — the
// source's sketch resolution and the weighted measures' common-neighbor
// degree lookups — once per batch, and scores chunks on parallel
// workers. Duplicate candidate ids receive identical scores; a
// candidate equal to u is scored like any other pair (TopK is the
// ranking layer that skips the source and deduplicates).
func (f *facade[S]) ScoreBatch(m Measure, u uint64, candidates []uint64) ([]float64, error) {
	qm, err := queryMeasure(m)
	if err != nil {
		return nil, err
	}
	return f.scoreBatchCore(qm, u, candidates, nil)
}

// TopK scores every candidate vertex against u under the given measure
// and returns the k best, ties broken toward smaller vertex ids for
// determinism. Candidates are deduplicated (repeated ids contribute one
// result entry) and u itself is skipped; scoring goes through the
// batched path and selection uses a size-k heap, so a query is O(N) in
// scoring plus O(N log k) in selection rather than O(N log N).
// Candidate generation is the caller's concern (a streaming sketch
// cannot enumerate two-hop neighborhoods itself); typical callers track
// recently active vertices or a per-community candidate pool.
func (f *facade[S]) TopK(m Measure, u uint64, candidates []uint64, k int) ([]Candidate, error) {
	qm, err := queryMeasure(m)
	if err != nil {
		return nil, err
	}
	return topKBatch(u, candidates, k, func(dedup []uint64, scores []float64) ([]float64, error) {
		return f.scoreBatchCore(qm, u, dedup, scores)
	})
}

// Degree returns the predictor's degree estimate for u (exact arrival
// count, or KMV distinct estimate under Config.DistinctDegrees; total
// in+out degree on directed predictors; windowed distinct count on
// windowed predictors).
func (f *facade[S]) Degree(u uint64) float64 { return f.store.Degree(u) }

// Seen reports whether u has appeared in the stream (within the live
// window, on windowed predictors).
func (f *facade[S]) Seen(u uint64) bool { return f.store.Knows(u) }

// NumVertices returns the number of distinct vertices observed
// (currently live in the window, on windowed predictors).
func (f *facade[S]) NumVertices() int { return f.store.NumVertices() }

// NumEdges returns the number of (non-self-loop) edges observed,
// counting duplicates (arcs on directed predictors; edges currently
// held, on windowed predictors).
func (f *facade[S]) NumEdges() int64 { return f.store.NumEdges() }

// MemoryBytes returns the predictor's payload memory: O(K) per observed
// vertex, independent of the number of edges.
func (f *facade[S]) MemoryBytes() int { return f.store.MemoryBytes() }

// Reserve pre-sizes the predictor's vertex maps and register arenas for
// n expected vertices, avoiding incremental grow copies during bulk
// ingest. A sizing hint only: it never shrinks, and ingest beyond n
// grows normally. Must not run concurrently with writes.
func (f *facade[S]) Reserve(n int) { f.store.Reserve(n) }

// TierOccupancy returns the live vertex count per register tier (index
// aligned with Config.Tiers), or nil when the predictor is uniform.
func (f *facade[S]) TierOccupancy() []int { return f.store.TierOccupancy() }

// Save writes the predictor's complete state (configuration, degree
// counters and sketches) to w in a versioned binary format, for
// checkpointing long-running stream processors. Each predictor type has
// its own Load constructor; LoadAnyEngine re-opens any of them. Facades
// over sharded stores take a consistent snapshot (concurrent writers
// block for the duration).
func (f *facade[S]) Save(w io.Writer) error {
	if err := f.store.Save(w); err != nil {
		return fmt.Errorf("linkpred: %w", err)
	}
	return nil
}
