// Package linkpred is a streaming link-prediction library: it maintains
// constant-space per-vertex graph sketches over an edge stream and
// answers link-prediction queries — Jaccard coefficient, common-neighbor
// count, Adamic–Adar index — at any point, in constant time per edge and
// per query.
//
// It is an independent implementation of the system described in
// "Link prediction in graph streams" (Zhao, Aggarwal, He; ICDE 2016):
// MinHash-based vertex sketches with degree counters, plus a
// vertex-biased sampling variant for Adamic–Adar. See DESIGN.md for the
// construction and EXPERIMENTS.md for the reproduced evaluation.
//
// # Quick start
//
//	p, err := linkpred.New(linkpred.Config{K: 128, Seed: 42})
//	if err != nil { ... }
//	for _, e := range edges {
//		p.Observe(e.U, e.V)
//	}
//	j := p.Jaccard(u, v)          // estimated Jaccard coefficient
//	cn := p.CommonNeighbors(u, v) // estimated |N(u) ∩ N(v)|
//	aa := p.AdamicAdar(u, v)      // estimated Adamic–Adar index
//
// Accuracy scales as 1/√K: use SketchSizeFor to derive K from a target
// (ε, δ) guarantee.
//
// # Predictor modes
//
// Five predictor types cover the mode matrix — Predictor (single-writer
// undirected), Concurrent (sharded undirected), Directed and
// ConcurrentDirected (arc streams), Windowed (sliding window). All five
// embed the same engine core, so every measure, Score/ScoreBatch/TopK,
// the stats gauges, and Save behave identically across modes; the
// Engine interface is the mode-agnostic handle serving layers build on.
package linkpred

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"linkpred/internal/core"
	"linkpred/internal/stream"
)

// Edge is one element of a graph stream: an undirected edge {U, V}
// observed at logical time T (T is informational; estimators do not use
// it).
type Edge struct {
	U, V uint64
	T    int64
}

// Config parameterises a Predictor.
type Config struct {
	// K is the number of sketch registers per vertex. Space per vertex
	// and time per edge are O(K); estimation error shrinks as 1/√K.
	// Required: K >= 1. See SketchSizeFor.
	K int
	// Seed determines the hash functions. Equal configurations over equal
	// streams produce identical estimates.
	Seed uint64
	// TabulationHashing switches the hash family from the default salted
	// splitmix64 mixing (fastest) to 3-independent simple tabulation.
	TabulationHashing bool
	// DistinctDegrees switches degree maintenance from exact arrival
	// counting (correct when each distinct edge appears once in the
	// stream) to a KMV distinct-count estimate that is robust to
	// duplicate arrivals at the cost of ~1/√K degree noise.
	DistinctDegrees bool
	// EnableBiased additionally maintains vertex-biased bottom-K sketches
	// so AdamicAdarBiased is available. Roughly doubles per-vertex space.
	EnableBiased bool
	// TrackTriangles accumulates a streaming estimate of the global
	// triangle count (see Triangles) at one extra O(K) comparison per
	// observed edge.
	TrackTriangles bool
	// Tiers, when set, makes the register count a per-vertex property:
	// new vertices start with Tiers[0].K registers and are promoted up
	// the ladder as their arrival counts cross each tier's PromoteAt
	// threshold, so register memory concentrates on the heavy hitters
	// that dominate real query workloads. Tiers must be filled
	// contiguously from index 0 with strictly increasing K and PromoteAt;
	// the last set tier's K must equal Config.K, and Tiers[0].PromoteAt
	// must be 0. The zero value is the uniform store: every vertex
	// carries exactly K registers. Tiered scoring compares register
	// prefixes, so a pair's accuracy is governed by its smaller sketch
	// (see TieredErrorBound). Not supported with EnableBiased or
	// TrackTriangles.
	Tiers [MaxTiers]Tier
}

// MaxTiers is the maximum ladder depth of Config.Tiers.
const MaxTiers = core.MaxTiers

// Tier is one rung of Config.Tiers: vertices whose arrival count has
// reached PromoteAt carry K registers (until the next rung).
type Tier struct {
	K         int
	PromoteAt int64
}

// ParseTiers parses a tier ladder from its flag syntax — comma-separated
// K:PromoteAt rungs, e.g. "16:0,64:8,128:64" — into Config.Tiers. The
// empty string parses to the zero (uniform) ladder. Only the syntax is
// checked here; the structural rules (ascending K and PromoteAt, last K
// equal to Config.K) are enforced by the predictor constructors.
func ParseTiers(s string) ([MaxTiers]Tier, error) {
	var tiers [MaxTiers]Tier
	if s == "" {
		return tiers, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > MaxTiers {
		return tiers, fmt.Errorf("linkpred: %d tiers exceeds the maximum %d", len(parts), MaxTiers)
	}
	for i, p := range parts {
		kStr, atStr, ok := strings.Cut(strings.TrimSpace(p), ":")
		if !ok {
			return tiers, fmt.Errorf("linkpred: tier %q: want K:PromoteAt", p)
		}
		k, err := strconv.Atoi(kStr)
		if err != nil {
			return tiers, fmt.Errorf("linkpred: tier %q: bad register count: %w", p, err)
		}
		at, err := strconv.ParseInt(atStr, 10, 64)
		if err != nil {
			return tiers, fmt.Errorf("linkpred: tier %q: bad promotion threshold: %w", p, err)
		}
		tiers[i] = Tier{K: k, PromoteAt: at}
	}
	return tiers, nil
}

// Measure identifies a link-prediction target measure for ranking.
type Measure int

const (
	// Jaccard ranks by the estimated Jaccard coefficient.
	Jaccard Measure = iota
	// CommonNeighbors ranks by the estimated common-neighbor count.
	CommonNeighbors
	// AdamicAdar ranks by the estimated Adamic–Adar index.
	AdamicAdar
	// ResourceAllocation ranks by the estimated resource-allocation
	// index Σ 1/d(w).
	ResourceAllocation
	// PreferentialAttachment ranks by the degree product d(u)·d(v).
	PreferentialAttachment
	// Cosine ranks by the estimated cosine (Salton) similarity.
	Cosine
)

// AllMeasures lists every Measure in declaration order, for iterating
// the measure space (HTTP handlers, CLIs, benchmarks).
var AllMeasures = []Measure{
	Jaccard, CommonNeighbors, AdamicAdar,
	ResourceAllocation, PreferentialAttachment, Cosine,
}

// measureByName inverts Measure.String, backing ParseMeasure.
var measureByName = func() map[string]Measure {
	byName := make(map[string]Measure, len(AllMeasures))
	for _, m := range AllMeasures {
		byName[m.String()] = m
	}
	return byName
}()

// ParseMeasure returns the Measure with the given conventional name
// (the output of Measure.String: "jaccard", "common-neighbors",
// "adamic-adar", "resource-allocation", "preferential-attachment",
// "cosine"). It is the single name→Measure table shared by the HTTP
// server and the CLIs, so every surface dispatches the same measure set.
func ParseMeasure(name string) (Measure, error) {
	m, ok := measureByName[name]
	if !ok {
		return 0, fmt.Errorf("linkpred: unknown measure %q", name)
	}
	return m, nil
}

// queryMeasure maps the public Measure onto the core query engine's
// measure enum, shared by every facade method. Adding a measure to the
// library is a two-file change: the kernel arm in
// internal/core/measure_kernel.go, plus the constant and this mapping.
func queryMeasure(m Measure) (core.QueryMeasure, error) {
	switch m {
	case Jaccard:
		return core.QueryJaccard, nil
	case CommonNeighbors:
		return core.QueryCommonNeighbors, nil
	case AdamicAdar:
		return core.QueryAdamicAdar, nil
	case ResourceAllocation:
		return core.QueryResourceAllocation, nil
	case PreferentialAttachment:
		return core.QueryPreferentialAttachment, nil
	case Cosine:
		return core.QueryCosine, nil
	default:
		return 0, fmt.Errorf("linkpred: unknown measure %v", m)
	}
}

// String returns the measure's conventional name.
func (m Measure) String() string {
	switch m {
	case Jaccard:
		return "jaccard"
	case CommonNeighbors:
		return "common-neighbors"
	case AdamicAdar:
		return "adamic-adar"
	case ResourceAllocation:
		return "resource-allocation"
	case PreferentialAttachment:
		return "preferential-attachment"
	case Cosine:
		return "cosine"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Predictor is a streaming link predictor. It is safe for concurrent
// queries, but Observe/ObserveEdge must not run concurrently with
// anything else.
//
// The query, stats, and persistence surface (Jaccard … Cosine, Score,
// ScoreBatch, TopK, Degree, Seen, NumVertices, NumEdges, MemoryBytes,
// Save) is the shared facade; see the Engine interface for the
// mode-agnostic contract.
type Predictor struct {
	facade[*core.SketchStore]
}

// New returns an empty Predictor. It returns an error if cfg.K < 1.
func New(cfg Config) (*Predictor, error) {
	store, err := core.NewSketchStore(coreConfig(cfg))
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &Predictor{facade[*core.SketchStore]{store: store, cfg: cfg}}, nil
}

// Observe folds the undirected edge {u, v} into the sketches.
// Self-loops are ignored. Cost: O(K).
func (p *Predictor) Observe(u, v uint64) {
	p.store.ProcessEdge(stream.Edge{U: u, V: v})
}

// streamEdgePool recycles the []stream.Edge conversion buffers behind
// the batch Observe methods, so steady-state batched ingest through the
// public facades allocates nothing per batch.
var streamEdgePool = sync.Pool{New: func() any { return new([]stream.Edge) }}

// toStreamEdges copies edges into a pooled []stream.Edge. Callers must
// return the buffer with putStreamEdges once the store call returns.
func toStreamEdges(edges []Edge) *[]stream.Edge {
	bp := streamEdgePool.Get().(*[]stream.Edge)
	buf := *bp
	if cap(buf) < len(edges) {
		buf = make([]stream.Edge, len(edges))
	}
	buf = buf[:len(edges)]
	for i, e := range edges {
		buf[i] = stream.Edge{U: e.U, V: e.V, T: e.T}
	}
	*bp = buf
	return bp
}

func putStreamEdges(bp *[]stream.Edge) { streamEdgePool.Put(bp) }

// AdamicAdarBiased returns the vertex-biased sampling estimate of the
// Adamic–Adar index. It returns NaN unless the Predictor was built with
// Config.EnableBiased.
func (p *Predictor) AdamicAdarBiased(u, v uint64) float64 {
	return p.store.EstimateAdamicAdarBiased(u, v)
}

// UnionSize returns the estimated number of distinct vertices in
// N(u) ∪ N(v).
func (p *Predictor) UnionSize(u, v uint64) float64 { return p.store.EstimateUnionSize(u, v) }

// Triangles returns the streaming estimate of the global triangle count
// accumulated so far. It returns 0 unless the Predictor was built with
// Config.TrackTriangles. Every triangle is counted exactly once (at its
// closing edge); duplicate edge arrivals re-count the triangles they
// close, so feed deduplicated streams for calibrated counts.
func (p *Predictor) Triangles() float64 { return p.store.EstimateTriangles() }

// VertexTriangles returns the estimated number of triangles incident to
// u. Requires Config.TrackTriangles.
func (p *Predictor) VertexTriangles(u uint64) float64 {
	return p.store.EstimateVertexTriangles(u)
}

// LocalClustering returns the estimated local clustering coefficient of
// u in [0, 1]: incident triangles over d(u)·(d(u)−1)/2. Requires
// Config.TrackTriangles; returns 0 for degree < 2.
func (p *Predictor) LocalClustering(u uint64) float64 {
	return p.store.EstimateLocalClustering(u)
}

// Candidate pairs a vertex with its estimated score, as returned by TopK.
type Candidate struct {
	V     uint64
	Score float64
}

// topKByScore is the sequential reference ranking: score each candidate
// with a per-pair call, materialize everything, fully sort. The TopK
// methods now rank through the batched path (topKBatch); this is kept as
// the oracle the equivalence tests compare against — the batch path must
// reproduce its output bit-for-bit on duplicate-free candidate lists.
// NaN scores sort after every real score — a NaN that compared false
// against everything would otherwise make the ordering non-transitive
// and the ranking nondeterministic.
func topKByScore(u uint64, candidates []uint64, k int, score func(v uint64) (float64, error)) ([]Candidate, error) {
	if k <= 0 {
		return nil, nil
	}
	out := make([]Candidate, 0, len(candidates))
	for _, v := range candidates {
		if v == u {
			continue
		}
		s, err := score(v)
		if err != nil {
			return nil, err
		}
		out = append(out, Candidate{V: v, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Score, out[j].Score
		if ni, nj := math.IsNaN(si), math.IsNaN(sj); ni || nj {
			if ni != nj {
				return nj // real scores rank above NaN
			}
		} else if si != sj {
			return si > sj
		}
		return out[i].V < out[j].V
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// Load restores a Predictor saved with Save. The restored Predictor
// answers every query identically to the saved one and can continue
// consuming the stream where it left off.
func Load(r io.Reader) (*Predictor, error) {
	store, err := core.LoadSketchStore(r)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &Predictor{facade[*core.SketchStore]{store: store, cfg: configFromCore(store.Config())}}, nil
}

// SketchSizeFor returns the smallest K for which the Jaccard estimator is
// (ε, δ)-accurate: P(|Ĵ − J| ≥ ε) ≤ δ for every query pair. It panics if
// eps or delta lie outside (0, 1).
func SketchSizeFor(eps, delta float64) int { return core.SketchSizeFor(eps, delta) }

// JaccardErrorBound returns the ε guaranteed by a K-register sketch at
// confidence 1−δ. It panics if k < 1 or delta lies outside (0, 1).
func JaccardErrorBound(k int, delta float64) float64 { return core.JaccardErrorBound(k, delta) }

// SimilarityIndex is an LSH banding index over the Predictor's sketches
// for whole-graph similarity search: "which vertices have neighborhoods
// like u's?" in O(bands) bucket lookups instead of scoring every vertex.
// Pairs with Jaccard J collide in some band with probability
// 1 − (1 − J^rows)^bands; choose bands/rows so the S-curve threshold
// (1/bands)^(1/rows) sits below the similarity you care about.
//
// The index is a snapshot of the sketches at build time; rebuild it
// periodically as the stream evolves.
type SimilarityIndex struct {
	idx *core.LSHIndex
}

// Similar is one similarity-search result.
type Similar struct {
	V       uint64
	Jaccard float64
}

// BuildSimilarityIndex builds an LSH index with the given banding over
// the current sketches. Requires bands·rows ≤ Config.K.
func (p *Predictor) BuildSimilarityIndex(bands, rows int) (*SimilarityIndex, error) {
	idx, err := p.store.BuildLSHIndex(bands, rows)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &SimilarityIndex{idx: idx}, nil
}

// Similar returns vertices whose estimated Jaccard with u is at least
// minJaccard, descending, at most limit (<= 0 for all).
func (s *SimilarityIndex) Similar(u uint64, minJaccard float64, limit int) []Similar {
	raw := s.idx.Similar(u, minJaccard, limit)
	out := make([]Similar, len(raw))
	for i, r := range raw {
		out[i] = Similar{V: r.V, Jaccard: r.Jaccard}
	}
	return out
}

// Candidates returns the raw (unverified) LSH candidate set for u.
func (s *SimilarityIndex) Candidates(u uint64) []uint64 { return s.idx.Candidates(u) }

// MemoryBytes returns the index's payload memory.
func (s *SimilarityIndex) MemoryBytes() int { return s.idx.MemoryBytes() }
