package linkpred_test

import (
	"bytes"
	"fmt"

	linkpred "linkpred"
)

// The examples below are compiled and executed by `go test`; their
// Output comments are verified, so the documented behaviour cannot
// drift from the real behaviour.

func Example() {
	p, err := linkpred.New(linkpred.Config{K: 128, Seed: 42})
	if err != nil {
		panic(err)
	}
	// Vertices 1 and 2 share the neighborhood {100..119}.
	for w := uint64(100); w < 120; w++ {
		p.Observe(1, w)
		p.Observe(2, w)
	}
	fmt.Printf("jaccard: %.2f\n", p.Jaccard(1, 2))
	fmt.Printf("common neighbors: ~%.0f\n", p.CommonNeighbors(1, 2))
	// Output:
	// jaccard: 1.00
	// common neighbors: ~20
}

func ExampleSketchSizeFor() {
	// How many registers for |Ĵ − J| ≤ 0.1 with 95% confidence?
	fmt.Println(linkpred.SketchSizeFor(0.1, 0.05))
	// Output:
	// 185
}

func ExamplePredictor_TopK() {
	p, err := linkpred.New(linkpred.Config{K: 256, Seed: 7})
	if err != nil {
		panic(err)
	}
	// Vertex 1 shares 10 neighbors with vertex 2, and 3 with vertex 3.
	for w := uint64(100); w < 110; w++ {
		p.Observe(1, w)
		p.Observe(2, w)
	}
	for w := uint64(100); w < 103; w++ {
		p.Observe(3, w)
	}
	top, err := p.TopK(linkpred.CommonNeighbors, 1, []uint64{2, 3}, 2)
	if err != nil {
		panic(err)
	}
	for _, c := range top {
		fmt.Printf("vertex %d\n", c.V)
	}
	// Output:
	// vertex 2
	// vertex 3
}

func ExamplePredictor_Save() {
	p, err := linkpred.New(linkpred.Config{K: 64, Seed: 3})
	if err != nil {
		panic(err)
	}
	p.Observe(1, 2)
	p.Observe(2, 3)

	var checkpoint bytes.Buffer
	if err := p.Save(&checkpoint); err != nil {
		panic(err)
	}
	restored, err := linkpred.Load(&checkpoint)
	if err != nil {
		panic(err)
	}
	fmt.Println(restored.NumEdges(), restored.Seen(2))
	// Output:
	// 2 true
}

func ExampleNewWindowed() {
	// A predictor that only remembers the last 100 time units.
	w, err := linkpred.NewWindowed(linkpred.Config{K: 64, Seed: 5}, 100, 4)
	if err != nil {
		panic(err)
	}
	for n := uint64(100); n < 120; n++ {
		w.ObserveEdge(linkpred.Edge{U: 1, V: n, T: 0})
		w.ObserveEdge(linkpred.Edge{U: 2, V: n, T: 0})
	}
	fmt.Printf("now: %.1f\n", w.Jaccard(1, 2))
	// Let the window pass.
	for ts := int64(10); ts <= 300; ts += 10 {
		w.ObserveEdge(linkpred.Edge{U: 1000 + uint64(ts), V: 2000, T: ts})
	}
	fmt.Printf("after window: %.1f\n", w.Jaccard(1, 2))
	// Output:
	// now: 1.0
	// after window: 0.0
}

func ExampleNewDirected() {
	d, err := linkpred.NewDirected(linkpred.Config{K: 128, Seed: 7})
	if err != nil {
		panic(err)
	}
	// Directed two-paths: 1 follows {10..19}, each of whom follows 2.
	for w := uint64(10); w < 20; w++ {
		d.Observe(1, w)
		d.Observe(w, 2)
	}
	fmt.Printf("score(1 -> 2): %.2f\n", d.Jaccard(1, 2))
	fmt.Printf("score(2 -> 1): %.2f\n", d.Jaccard(2, 1))
	// Output:
	// score(1 -> 2): 1.00
	// score(2 -> 1): 0.00
}

func ExampleNewRecommender() {
	r, err := linkpred.NewRecommender(linkpred.RecommenderConfig{
		Predictor: linkpred.Config{K: 128, Seed: 5},
	})
	if err != nil {
		panic(err)
	}
	// 1 and 2 repeatedly co-occur around shared hubs: the tracker
	// discovers the candidate, the sketch scores it.
	for round := 0; round < 3; round++ {
		for h := uint64(10); h < 15; h++ {
			r.Observe(1, h)
			r.Observe(2, h)
		}
	}
	recs, err := r.Recommend(linkpred.CommonNeighbors, 1, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("suggested partner for 1:", recs[0].V)
	// Output:
	// suggested partner for 1: 2
}

func ExampleConfig_trackTriangles() {
	p, err := linkpred.New(linkpred.Config{K: 512, Seed: 3, TrackTriangles: true})
	if err != nil {
		panic(err)
	}
	// A triangle and a pendant edge.
	p.Observe(1, 2)
	p.Observe(2, 3)
	p.Observe(1, 3)
	p.Observe(3, 4)
	fmt.Printf("triangles: %.0f\n", p.Triangles())
	// Output:
	// triangles: 1
}
