package linkpred

import (
	"fmt"
	"io"

	"linkpred/internal/core"
	"linkpred/internal/stream"
)

// Dynamic is the fully-dynamic streaming link predictor: the only mode
// whose sketches support edge deletion. Each register keeps a small
// recovery buffer (the `depth` smallest hashes it has seen and not yet
// retracted), so deleting an edge re-exposes the next-smallest hash
// instead of leaving the register permanently wrong. When a register's
// buffer underflows — deletions drained it while arrivals had been
// discarded past its capacity — the register is marked degraded
// (sticky, see DegradedRegisters) rather than ever serving a silently
// wrong value. See DESIGN.md §2.10 for the layout and the
// degraded-rebuild contract.
//
// All six measures work unchanged; queries cost the same O(K) as the
// single mode. Space is roughly depth× the insert-only store's
// register payload. Not safe for concurrent use (wrap in Synchronized,
// as NewEngine does).
type Dynamic struct {
	facade[*core.DynamicStore]
}

// NewDynamic returns an empty deletion-capable predictor. depth is the
// per-register recovery-buffer depth (0 selects the default, 8); a
// register survives roughly depth−1 deletions between discarded
// arrivals before degrading. It returns an error if cfg.K < 1, depth
// is out of range, or cfg enables the insert-only extras (biased
// sketches, triangle tracking).
func NewDynamic(cfg Config, depth int) (*Dynamic, error) {
	store, err := core.NewDynamicStore(coreConfig(cfg), depth)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &Dynamic{facade[*core.DynamicStore]{store: store, cfg: cfg}}, nil
}

// LoadDynamic restores a predictor saved with (*Dynamic).Save.
func LoadDynamic(r io.Reader) (*Dynamic, error) {
	store, err := core.LoadDynamicStore(r)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &Dynamic{facade[*core.DynamicStore]{store: store, cfg: configFromCore(store.Config())}}, nil
}

// DeleteEdge retracts one prior arrival of the edge (u, v) from both
// endpoint sketches, reporting whether it was applied: deletes of
// never-observed (or already fully retracted) edges are exact no-ops
// returning false.
func (d *Dynamic) DeleteEdge(e Edge) bool {
	return d.store.DeleteEdge(stream.Edge{U: e.U, V: e.V, T: e.T})
}

// DeleteEdges retracts a batch of edges in order, returning how many
// were applied.
func (d *Dynamic) DeleteEdges(edges []Edge) int {
	buf := toStreamEdges(edges)
	n := d.store.DeleteEdges(*buf)
	putStreamEdges(buf)
	return n
}

// DegradedRegisters returns the number of registers whose recovery
// buffer has underflowed: their values are best-known but no longer
// provably identical to a sketch that never saw the deleted edges. The
// count is sticky; it resets only when the store is rebuilt from the
// source of truth (replay the live edge set into a fresh predictor).
func (d *Dynamic) DegradedRegisters() int64 { return d.store.DegradedRegisters() }

// Degraded reports whether any register has degraded.
func (d *Dynamic) Degraded() bool { return d.store.Degraded() }

// RecoveryDepth returns the per-register recovery-buffer depth.
func (d *Dynamic) RecoveryDepth() int { return d.store.RecoveryDepth() }

// EdgeDeleter is the capability interface of engines that support edge
// deletion (currently the dynamic mode). Obtain one through DeleterOf,
// which preserves the locking discipline of Synchronized engines.
type EdgeDeleter interface {
	// DeleteEdge retracts one prior arrival of e, reporting whether the
	// delete was applied (false: never observed, or already retracted).
	DeleteEdge(e Edge) bool
	// DeleteEdges retracts a batch in order, returning how many applied.
	DeleteEdges(edges []Edge) int
}

// Compile-time check: the dynamic predictor is an EdgeDeleter.
var _ EdgeDeleter = (*Dynamic)(nil)

// DeleterOf returns the engine's deletion capability, seeing through
// Synchronized wrappers: deletes on a wrapped engine are serialized
// against queries under the wrapper's write lock, exactly like
// ObserveEdges. ok is false for engines that cannot delete.
func DeleterOf(e Engine) (EdgeDeleter, bool) {
	if s, ok := e.(*Synchronized); ok {
		inner, ok := s.inner.(EdgeDeleter)
		if !ok {
			return nil, false
		}
		return &syncedDeleter{s: s, inner: inner}, true
	}
	d, ok := e.(EdgeDeleter)
	return d, ok
}

// syncedDeleter routes deletes through the Synchronized wrapper's
// write lock.
type syncedDeleter struct {
	s     *Synchronized
	inner EdgeDeleter
}

func (d *syncedDeleter) DeleteEdge(e Edge) bool {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	return d.inner.DeleteEdge(e)
}

func (d *syncedDeleter) DeleteEdges(edges []Edge) int {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	return d.inner.DeleteEdges(edges)
}

// DegradedRegistersOf returns the engine's sticky degraded-register
// count, seeing through Synchronized wrappers (the read happens under
// the wrapper's read lock). ok is false for engines without the gauge
// (every non-dynamic mode).
func DegradedRegistersOf(e Engine) (n int64, ok bool) {
	if s, ok := e.(*Synchronized); ok {
		d, ok := s.inner.(*Dynamic)
		if !ok {
			return 0, false
		}
		s.mu.RLock()
		defer s.mu.RUnlock()
		return d.DegradedRegisters(), true
	}
	if d, ok := e.(*Dynamic); ok {
		return d.DegradedRegisters(), true
	}
	return 0, false
}
