package linkpred

import (
	"context"
	"errors"

	"linkpred/internal/core"
)

// Context-aware serving surface (DESIGN.md §2.12). The HTTP server
// attaches per-request deadlines; these methods propagate them into
// the store's batched hot paths as a done channel so an expired or
// abandoned request stops consuming query workers and pipeline ring
// slots instead of running to completion.
//
// Cancellation granularity follows the core contract:
//
//   - ScoreBatchCtx / TopKCtx cancel at shard granularity and return
//     ctx.Err() once the deadline fires; partial scores are discarded.
//   - ObserveEdgesCtx cancels only BEFORE the batch is committed to
//     the store. Once ingestion has started the batch always completes
//     and nil is returned — a half-applied batch would desynchronize
//     the store from a durability layer's acked WAL prefix.
//
// Stores without the cancellation capability degrade to one ctx check
// up front followed by the plain call, so every engine mode satisfies
// the interfaces and callers need no mode switch.

// CtxQuerier is the capability of engines whose batched query paths
// honor context cancellation and deadlines.
type CtxQuerier interface {
	ScoreBatchCtx(ctx context.Context, m Measure, u uint64, candidates []uint64) ([]float64, error)
	TopKCtx(ctx context.Context, m Measure, u uint64, candidates []uint64, k int) ([]Candidate, error)
}

// CtxIngester is the capability of engines whose batched ingest honors
// pre-commit context cancellation.
type CtxIngester interface {
	ObserveEdgesCtx(ctx context.Context, edges []Edge) error
}

// Compile-time checks: every facade and the Synchronized wrapper carry
// the context-aware surface.
var (
	_ CtxQuerier = (*Predictor)(nil)
	_ CtxQuerier = (*Concurrent)(nil)
	_ CtxQuerier = (*Directed)(nil)
	_ CtxQuerier = (*ConcurrentDirected)(nil)
	_ CtxQuerier = (*Windowed)(nil)
	_ CtxQuerier = (*Dynamic)(nil)
	_ CtxQuerier = (*Synchronized)(nil)

	_ CtxIngester = (*Predictor)(nil)
	_ CtxIngester = (*Concurrent)(nil)
	_ CtxIngester = (*Directed)(nil)
	_ CtxIngester = (*ConcurrentDirected)(nil)
	_ CtxIngester = (*Windowed)(nil)
	_ CtxIngester = (*Dynamic)(nil)
	_ CtxIngester = (*Synchronized)(nil)
)

// CtxQuerierOf returns e's context-aware query capability. Every engine
// this package constructs satisfies it (Synchronized implements the
// interface itself, under its own read lock), so ok is false only for
// foreign Engine implementations.
func CtxQuerierOf(e Engine) (CtxQuerier, bool) {
	q, ok := e.(CtxQuerier)
	return q, ok
}

// CtxIngesterOf returns e's context-aware ingest capability; ok is
// false only for foreign Engine implementations.
func CtxIngesterOf(e Engine) (CtxIngester, bool) {
	i, ok := e.(CtxIngester)
	return i, ok
}

// ctxErrFrom maps the core package's cancellation sentinel back onto
// the context's own error (DeadlineExceeded vs Canceled) so callers
// can distinguish 504 from 499. If the store reported cancellation but
// the context is somehow still live, the sentinel is surfaced as-is.
func ctxErrFrom(ctx context.Context, err error) error {
	if errors.Is(err, core.ErrCanceled) {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return err
}

// scoreBatchCoreCtx is scoreBatchCore with the request's done channel
// threaded into stores that can honor it.
func (f *facade[S]) scoreBatchCoreCtx(ctx context.Context, qm core.QueryMeasure, u uint64, candidates []uint64, out []float64) ([]float64, error) {
	if cs, ok := any(f.store).(core.CancelBatchScorer); ok {
		res, err := cs.ScoreBatchCancel(qm, u, candidates, out, ctx.Done())
		if err != nil {
			return nil, ctxErrFrom(ctx, err)
		}
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f.scoreBatchCore(qm, u, candidates, out)
}

// ScoreBatchCtx is ScoreBatch with deadline propagation: workers stop
// claiming score chunks once ctx is done and the call returns ctx.Err().
func (f *facade[S]) ScoreBatchCtx(ctx context.Context, m Measure, u uint64, candidates []uint64) ([]float64, error) {
	qm, err := queryMeasure(m)
	if err != nil {
		return nil, err
	}
	return f.scoreBatchCoreCtx(ctx, qm, u, candidates, nil)
}

// TopKCtx is TopK with deadline propagation through the batched
// scoring pass; selection itself is O(N log k) and not cancellable.
func (f *facade[S]) TopKCtx(ctx context.Context, m Measure, u uint64, candidates []uint64, k int) ([]Candidate, error) {
	qm, err := queryMeasure(m)
	if err != nil {
		return nil, err
	}
	return topKBatch(u, candidates, k, func(dedup []uint64, scores []float64) ([]float64, error) {
		return f.scoreBatchCoreCtx(ctx, qm, u, dedup, scores)
	})
}

// ObserveEdgesCtx is ObserveEdges with pre-commit cancellation: if ctx
// is done before the batch is handed to the store (including while the
// pipeline producer waits on a full ring), nothing is applied and
// ctx.Err() is returned; once ingestion starts the batch completes and
// nil is returned.
func (f *facade[S]) ObserveEdgesCtx(ctx context.Context, edges []Edge) error {
	buf := toStreamEdges(edges)
	defer putStreamEdges(buf)
	if ci, ok := any(f.store).(core.CancelBatchIngester); ok {
		if err := ci.IngestBatchCancel(*buf, ctx.Done()); err != nil {
			return ctxErrFrom(ctx, err)
		}
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if bi, ok := any(f.store).(core.BatchIngester); ok {
		bi.IngestBatch(*buf)
	} else {
		for _, e := range *buf {
			f.store.Ingest(e)
		}
	}
	return nil
}

// ScoreBatchCtx scores a batch under one read lock acquisition,
// propagating the request deadline into the wrapped engine.
func (s *Synchronized) ScoreBatchCtx(ctx context.Context, m Measure, u uint64, candidates []uint64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if cq, ok := s.inner.(CtxQuerier); ok {
		return cq.ScoreBatchCtx(ctx, m, u, candidates)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.inner.ScoreBatch(m, u, candidates)
}

// TopKCtx ranks a batch under one read lock acquisition, propagating
// the request deadline into the wrapped engine.
func (s *Synchronized) TopKCtx(ctx context.Context, m Measure, u uint64, candidates []uint64, k int) ([]Candidate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if cq, ok := s.inner.(CtxQuerier); ok {
		return cq.TopKCtx(ctx, m, u, candidates, k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.inner.TopK(m, u, candidates, k)
}

// ObserveEdgesCtx folds a batch under the write lock with pre-commit
// cancellation. The ctx check runs after lock acquisition, so a request
// that expired while queued behind a writer is rejected before it
// mutates anything.
func (s *Synchronized) ObserveEdgesCtx(ctx context.Context, edges []Edge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ci, ok := s.inner.(CtxIngester); ok {
		return ci.ObserveEdgesCtx(ctx, edges)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.inner.ObserveEdges(edges)
	return nil
}
