package linkpred

import (
	"fmt"
	"io"

	"linkpred/internal/core"
	"linkpred/internal/hashing"
	"linkpred/internal/stream"
)

// Directed is a streaming link predictor for directed graph streams
// (follows, citations, payments). Each vertex carries separate sketches
// of its out- and in-neighborhoods; queries score a candidate *arc*
// u → v against the directed common neighborhood
// {w : u → w → v} = N_out(u) ∩ N_in(v), so — unlike the undirected
// Predictor — every estimate is asymmetric: Jaccard(u, v) scores u → v.
//
// Space is O(2K) words per vertex and time O(K) per arc and per query.
// Config.EnableBiased is not supported. Not safe for concurrent use.
type Directed struct {
	store *core.DirectedStore
	cfg   Config
}

// NewDirected returns an empty directed predictor. It returns an error
// if cfg.K < 1 or cfg.EnableBiased is set.
func NewDirected(cfg Config) (*Directed, error) {
	kind := hashing.KindMixed
	if cfg.TabulationHashing {
		kind = hashing.KindTabulation
	}
	degrees := core.DegreeArrivals
	if cfg.DistinctDegrees {
		degrees = core.DegreeDistinctKMV
	}
	store, err := core.NewDirectedStore(core.Config{
		K:            cfg.K,
		Seed:         cfg.Seed,
		Hash:         kind,
		Degrees:      degrees,
		EnableBiased: cfg.EnableBiased,
	})
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &Directed{store: store, cfg: cfg}, nil
}

// Config returns the configuration the predictor was built with.
func (d *Directed) Config() Config { return d.cfg }

// Observe folds the arc u → v into the sketches. Self-loops are
// ignored.
func (d *Directed) Observe(u, v uint64) {
	d.store.ProcessArc(stream.Edge{U: u, V: v})
}

// ObserveEdge folds a timestamped arc Edge.U → Edge.V.
func (d *Directed) ObserveEdge(e Edge) {
	d.store.ProcessArc(stream.Edge{U: e.U, V: e.V, T: e.T})
}

// Jaccard returns the estimated directed Jaccard coefficient of the
// candidate arc u → v: |N_out(u) ∩ N_in(v)| / |N_out(u) ∪ N_in(v)|.
func (d *Directed) Jaccard(u, v uint64) float64 { return d.store.EstimateJaccard(u, v) }

// CommonNeighbors returns the estimated number of directed two-path
// midpoints |{w : u → w → v}|.
func (d *Directed) CommonNeighbors(u, v uint64) float64 {
	return d.store.EstimateCommonNeighbors(u, v)
}

// AdamicAdar returns the estimated directed Adamic–Adar index of the
// arc u → v, weighting midpoints by total (in+out) degree.
func (d *Directed) AdamicAdar(u, v uint64) float64 { return d.store.EstimateAdamicAdar(u, v) }

// ResourceAllocation returns the estimated directed resource-allocation
// index of u → v (the Adamic–Adar construction with 1/d midpoint
// weights).
func (d *Directed) ResourceAllocation(u, v uint64) float64 {
	return d.store.EstimateResourceAllocation(u, v)
}

// PreferentialAttachment returns the directed degree product
// d_out(u)·d_in(v).
func (d *Directed) PreferentialAttachment(u, v uint64) float64 {
	return d.store.EstimatePreferentialAttachment(u, v)
}

// Cosine returns the estimated directed cosine similarity
// |N_out(u) ∩ N_in(v)| / sqrt(d_out(u)·d_in(v)).
func (d *Directed) Cosine(u, v uint64) float64 { return d.store.EstimateCosine(u, v) }

// OutDegree returns the out-degree estimate of u.
func (d *Directed) OutDegree(u uint64) float64 { return d.store.OutDegree(u) }

// InDegree returns the in-degree estimate of u.
func (d *Directed) InDegree(u uint64) float64 { return d.store.InDegree(u) }

// Seen reports whether u has appeared in the stream (either arc
// endpoint).
func (d *Directed) Seen(u uint64) bool { return d.store.Knows(u) }

// NumVertices returns the number of distinct vertices observed.
func (d *Directed) NumVertices() int { return d.store.NumVertices() }

// NumArcs returns the number of (non-self-loop) arcs observed, counting
// duplicates.
func (d *Directed) NumArcs() int64 { return d.store.NumArcs() }

// MemoryBytes returns the predictor's payload memory (two sketches per
// vertex).
func (d *Directed) MemoryBytes() int { return d.store.MemoryBytes() }

// Save writes the predictor's complete state to w, for checkpointing
// long-running arc-stream processors. LoadDirected restores it.
func (d *Directed) Save(w io.Writer) error {
	if err := d.store.Save(w); err != nil {
		return fmt.Errorf("linkpred: %w", err)
	}
	return nil
}

// LoadDirected restores a predictor saved with (*Directed).Save. The
// restored predictor answers every query identically and can continue
// consuming the arc stream where the original left off.
func LoadDirected(r io.Reader) (*Directed, error) {
	store, err := core.LoadDirected(r)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	cc := store.Config()
	return &Directed{store: store, cfg: Config{
		K:                 cc.K,
		Seed:              cc.Seed,
		TabulationHashing: cc.Hash == hashing.KindTabulation,
		DistinctDegrees:   cc.Degrees == core.DegreeDistinctKMV,
	}}, nil
}
