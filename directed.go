package linkpred

import (
	"fmt"
	"io"

	"linkpred/internal/core"
	"linkpred/internal/stream"
)

// Directed is a streaming link predictor for directed graph streams
// (follows, citations, payments). Each vertex carries separate sketches
// of its out- and in-neighborhoods; queries score a candidate *arc*
// u → v against the directed common neighborhood
// {w : u → w → v} = N_out(u) ∩ N_in(v), so — unlike the undirected
// Predictor — every estimate is asymmetric: Jaccard(u, v) scores u → v.
// PreferentialAttachment is the directed degree product d_out(u)·d_in(v),
// and the weighted measures (AdamicAdar, ResourceAllocation) weight
// midpoints by total (in+out) degree. Degree returns the total in+out
// degree; the directed sides stay available through OutDegree/InDegree,
// and NumEdges counts arcs (alias NumArcs).
//
// Space is O(2K) words per vertex and time O(K) per arc and per query.
// Config.EnableBiased is not supported. Not safe for concurrent use
// (wrap in Synchronized, or use ConcurrentDirected).
type Directed struct {
	facade[*core.DirectedStore]
}

// NewDirected returns an empty directed predictor. It returns an error
// if cfg.K < 1 or cfg.EnableBiased is set.
func NewDirected(cfg Config) (*Directed, error) {
	cc := coreConfig(cfg)
	cc.TrackTriangles = false // triangle tracking is undirected-only
	store, err := core.NewDirectedStore(cc)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &Directed{facade[*core.DirectedStore]{store: store, cfg: cfg}}, nil
}

// Observe folds the arc u → v into the sketches. Self-loops are
// ignored.
func (d *Directed) Observe(u, v uint64) {
	d.store.ProcessArc(stream.Edge{U: u, V: v})
}

// OutDegree returns the out-degree estimate of u.
func (d *Directed) OutDegree(u uint64) float64 { return d.store.OutDegree(u) }

// InDegree returns the in-degree estimate of u.
func (d *Directed) InDegree(u uint64) float64 { return d.store.InDegree(u) }

// NumArcs returns the number of (non-self-loop) arcs observed, counting
// duplicates (alias of NumEdges).
func (d *Directed) NumArcs() int64 { return d.store.NumArcs() }

// LoadDirected restores a predictor saved with (*Directed).Save. The
// restored predictor answers every query identically and can continue
// consuming the arc stream where the original left off.
func LoadDirected(r io.Reader) (*Directed, error) {
	store, err := core.LoadDirected(r)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &Directed{facade[*core.DirectedStore]{store: store, cfg: configFromCore(store.Config())}}, nil
}
