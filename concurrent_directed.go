package linkpred

import (
	"fmt"
	"io"

	"linkpred/internal/core"
	"linkpred/internal/hashing"
	"linkpred/internal/stream"
)

// ConcurrentDirected is the thread-safe directed predictor: the Directed
// API with vertex-sharded locking, for parallel ingest of follow or
// citation streams. Estimates are identical to a single-threaded
// Directed fed the same multiset of arcs.
//
// Config.EnableBiased and Config.TrackTriangles are not supported.
type ConcurrentDirected struct {
	store *core.ShardedDirected
	cfg   Config
}

// NewConcurrentDirected returns an empty concurrent directed predictor
// with the given number of shards.
func NewConcurrentDirected(cfg Config, shards int) (*ConcurrentDirected, error) {
	kind := hashing.KindMixed
	if cfg.TabulationHashing {
		kind = hashing.KindTabulation
	}
	degrees := core.DegreeArrivals
	if cfg.DistinctDegrees {
		degrees = core.DegreeDistinctKMV
	}
	store, err := core.NewShardedDirected(core.Config{
		K:              cfg.K,
		Seed:           cfg.Seed,
		Hash:           kind,
		Degrees:        degrees,
		EnableBiased:   cfg.EnableBiased,
		TrackTriangles: cfg.TrackTriangles,
	}, shards)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &ConcurrentDirected{store: store, cfg: cfg}, nil
}

// Config returns the configuration the predictor was built with.
func (c *ConcurrentDirected) Config() Config { return c.cfg }

// NumShards returns the shard count.
func (c *ConcurrentDirected) NumShards() int { return c.store.NumShards() }

// Observe folds the arc u → v into the sketches. Safe for concurrent
// use.
func (c *ConcurrentDirected) Observe(u, v uint64) {
	c.store.ProcessArc(stream.Edge{U: u, V: v})
}

// ObserveEdge folds a timestamped arc Edge.U → Edge.V. Safe for
// concurrent use.
func (c *ConcurrentDirected) ObserveEdge(e Edge) {
	c.store.ProcessArc(stream.Edge{U: e.U, V: e.V, T: e.T})
}

// ObserveEdges folds a batch of arcs into the sketches. Safe for
// concurrent use; like Concurrent.ObserveEdges it hashes each distinct
// endpoint once outside any lock, folds duplicate arcs into arrival
// multiplicities, and takes each shard lock once per batch. The result
// is register-identical to per-arc ingest of the same arcs.
func (c *ConcurrentDirected) ObserveEdges(edges []Edge) {
	buf := toStreamEdges(edges)
	c.store.ProcessArcs(*buf)
	putStreamEdges(buf)
}

// Jaccard returns the estimated directed Jaccard of the candidate arc
// u → v.
func (c *ConcurrentDirected) Jaccard(u, v uint64) float64 {
	return c.store.EstimateJaccard(u, v)
}

// CommonNeighbors returns the estimated number of directed two-path
// midpoints |{w : u → w → v}|.
func (c *ConcurrentDirected) CommonNeighbors(u, v uint64) float64 {
	return c.store.EstimateCommonNeighbors(u, v)
}

// AdamicAdar returns the estimated directed Adamic–Adar index of u → v.
func (c *ConcurrentDirected) AdamicAdar(u, v uint64) float64 {
	return c.store.EstimateAdamicAdar(u, v)
}

// ResourceAllocation returns the estimated directed resource-allocation
// index of u → v (midpoints weighted by 1/d of their total degree).
func (c *ConcurrentDirected) ResourceAllocation(u, v uint64) float64 {
	return c.store.EstimateResourceAllocation(u, v)
}

// PreferentialAttachment returns the directed degree product
// d_out(u)·d_in(v).
func (c *ConcurrentDirected) PreferentialAttachment(u, v uint64) float64 {
	return c.store.EstimatePreferentialAttachment(u, v)
}

// Cosine returns the estimated directed cosine similarity of u → v.
func (c *ConcurrentDirected) Cosine(u, v uint64) float64 {
	return c.store.EstimateCosine(u, v)
}

// Score returns the estimate of the given measure for the candidate arc
// u → v. Every library measure is supported, under the directed reading:
// common neighborhoods are N_out(u) ∩ N_in(v), and degree terms use
// d_out(u) and d_in(v).
func (c *ConcurrentDirected) Score(m Measure, u, v uint64) (float64, error) {
	switch m {
	case Jaccard:
		return c.store.EstimateJaccard(u, v), nil
	case CommonNeighbors:
		return c.store.EstimateCommonNeighbors(u, v), nil
	case AdamicAdar:
		return c.store.EstimateAdamicAdar(u, v), nil
	case ResourceAllocation:
		return c.store.EstimateResourceAllocation(u, v), nil
	case PreferentialAttachment:
		return c.store.EstimatePreferentialAttachment(u, v), nil
	case Cosine:
		return c.store.EstimateCosine(u, v), nil
	default:
		return 0, fmt.Errorf("linkpred: unknown measure %v", m)
	}
}

// ScoreBatch scores every candidate arc u → candidate under the given
// measure in one batched pass, returning scores aligned with candidates.
// The source's out-sketch is pinned under one read lock and each shard's
// candidate in-sketch views are copied under one read lock per shard per
// batch, so per-query lock cost is O(shards), not O(candidates). Safe
// for concurrent use with writers. Supports the same measures as Score.
func (c *ConcurrentDirected) ScoreBatch(m Measure, u uint64, candidates []uint64) ([]float64, error) {
	qm, err := queryMeasure(m)
	if err != nil {
		return nil, err
	}
	return c.store.ScoreBatch(qm, u, candidates, nil)
}

// TopK scores every candidate arc u → candidate and returns the k best,
// ties broken toward smaller vertex ids. Candidates are deduplicated
// (repeated ids contribute one result entry) and u itself is skipped;
// scoring goes through the batched path and selection uses a size-k
// heap. Supports the same measures as Score.
func (c *ConcurrentDirected) TopK(m Measure, u uint64, candidates []uint64, k int) ([]Candidate, error) {
	qm, err := queryMeasure(m)
	if err != nil {
		return nil, err
	}
	return topKBatch(u, candidates, k, func(dedup []uint64, scores []float64) ([]float64, error) {
		return c.store.ScoreBatch(qm, u, dedup, scores)
	})
}

// OutDegree returns the out-degree estimate of u.
func (c *ConcurrentDirected) OutDegree(u uint64) float64 { return c.store.OutDegree(u) }

// InDegree returns the in-degree estimate of u.
func (c *ConcurrentDirected) InDegree(u uint64) float64 { return c.store.InDegree(u) }

// Seen reports whether u has appeared in the stream.
func (c *ConcurrentDirected) Seen(u uint64) bool { return c.store.Knows(u) }

// NumVertices returns the number of distinct vertices observed.
func (c *ConcurrentDirected) NumVertices() int { return c.store.NumVertices() }

// NumArcs returns the number of (non-self-loop) arcs observed.
func (c *ConcurrentDirected) NumArcs() int64 { return c.store.NumArcs() }

// MemoryBytes returns the predictor's payload memory.
func (c *ConcurrentDirected) MemoryBytes() int { return c.store.MemoryBytes() }

// Save writes the predictor's complete state to w. It takes a
// consistent snapshot: concurrent writers block for the duration.
func (c *ConcurrentDirected) Save(w io.Writer) error {
	if err := c.store.Save(w); err != nil {
		return fmt.Errorf("linkpred: %w", err)
	}
	return nil
}

// LoadConcurrentDirected restores a predictor saved with
// (*ConcurrentDirected).Save.
func LoadConcurrentDirected(r io.Reader) (*ConcurrentDirected, error) {
	store, err := core.LoadShardedDirected(r)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	cc := store.Config()
	return &ConcurrentDirected{store: store, cfg: Config{
		K:                 cc.K,
		Seed:              cc.Seed,
		TabulationHashing: cc.Hash == hashing.KindTabulation,
		DistinctDegrees:   cc.Degrees == core.DegreeDistinctKMV,
	}}, nil
}
