package linkpred

import (
	"fmt"
	"io"

	"linkpred/internal/core"
	"linkpred/internal/stream"
)

// ConcurrentDirected is the thread-safe directed predictor: the Directed
// API with vertex-sharded locking, for parallel ingest of follow or
// citation streams. Estimates are identical to a single-threaded
// Directed fed the same multiset of arcs. Like Concurrent, ObserveEdges
// hashes each distinct endpoint once outside any lock, folds duplicate
// arcs into arrival multiplicities, and takes each shard lock once per
// batch; ScoreBatch/TopK pin the source's out-sketch under one read lock
// and copy each shard's candidate in-sketch views under one read lock
// per shard per batch.
//
// Config.EnableBiased and Config.TrackTriangles are not supported.
type ConcurrentDirected struct {
	facade[*core.ShardedDirected]
}

// NewConcurrentDirected returns an empty concurrent directed predictor
// with the given number of shards.
func NewConcurrentDirected(cfg Config, shards int) (*ConcurrentDirected, error) {
	store, err := core.NewShardedDirected(coreConfig(cfg), shards)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &ConcurrentDirected{facade[*core.ShardedDirected]{store: store, cfg: cfg}}, nil
}

// NumShards returns the shard count.
func (c *ConcurrentDirected) NumShards() int { return c.store.NumShards() }

// Observe folds the arc u → v into the sketches. Safe for concurrent
// use.
func (c *ConcurrentDirected) Observe(u, v uint64) {
	c.store.ProcessArc(stream.Edge{U: u, V: v})
}

// OutDegree returns the out-degree estimate of u.
func (c *ConcurrentDirected) OutDegree(u uint64) float64 { return c.store.OutDegree(u) }

// InDegree returns the in-degree estimate of u.
func (c *ConcurrentDirected) InDegree(u uint64) float64 { return c.store.InDegree(u) }

// NumArcs returns the number of (non-self-loop) arcs observed (alias of
// NumEdges).
func (c *ConcurrentDirected) NumArcs() int64 { return c.store.NumArcs() }

// StartIngestPipeline starts the shard-owner ingest pipeline; semantics
// match (*Concurrent).StartIngestPipeline.
func (c *ConcurrentDirected) StartIngestPipeline(workers, ringSize int) bool {
	return c.store.StartPipeline(workers, ringSize)
}

// StopIngestPipeline drains and stops the ingest pipeline.
func (c *ConcurrentDirected) StopIngestPipeline() { c.store.StopPipeline() }

// IngestPipelineStats snapshots the running pipeline's backpressure
// gauges; ok is false when no pipeline is running.
func (c *ConcurrentDirected) IngestPipelineStats() (PipelineStats, bool) {
	return c.store.PipelineStats()
}

// ObserveEdgesAsync publishes a batch of arcs to the running ingest
// pipeline without waiting; FlushIngest is the barrier. Without a
// pipeline it behaves exactly like ObserveEdges.
func (c *ConcurrentDirected) ObserveEdgesAsync(edges []Edge) {
	buf := toStreamEdges(edges)
	c.store.ProcessArcsAsync(*buf)
	putStreamEdges(buf)
}

// FlushIngest blocks until every ObserveEdgesAsync batch has been fully
// applied. No-op without a running pipeline.
func (c *ConcurrentDirected) FlushIngest() { c.store.FlushIngest() }

// LoadConcurrentDirected restores a predictor saved with
// (*ConcurrentDirected).Save.
func LoadConcurrentDirected(r io.Reader) (*ConcurrentDirected, error) {
	store, err := core.LoadShardedDirected(r)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &ConcurrentDirected{facade[*core.ShardedDirected]{store: store, cfg: configFromCore(store.Config())}}, nil
}
