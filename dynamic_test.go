package linkpred

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func dynTestEdges(r *rand.Rand, n int, vertices uint64) []Edge {
	edges := make([]Edge, 0, n)
	for len(edges) < n {
		u := r.Uint64() % vertices
		v := r.Uint64() % vertices
		if u == v {
			continue
		}
		edges = append(edges, Edge{U: u, V: v, T: int64(len(edges))})
	}
	return edges
}

// TestDynamicEngineMode: the dynamic mode constructs through the
// NewEngine registry, reports its mode, exposes the deletion
// capability through DeleterOf, and round-trips through LoadAnyEngine.
func TestDynamicEngineMode(t *testing.T) {
	eng, err := NewEngine(EngineSpec{Mode: ModeDynamic, Config: Config{K: 16, Seed: 3}, RecoverDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := ModeOf(eng); got != ModeDynamic {
		t.Fatalf("ModeOf = %q, want %q", got, ModeDynamic)
	}
	if DirectedEngine(eng) {
		t.Fatal("dynamic engine claims to be directed")
	}
	del, ok := DeleterOf(eng)
	if !ok {
		t.Fatal("dynamic engine has no deleter")
	}
	r := rand.New(rand.NewSource(5))
	edges := dynTestEdges(r, 500, 50)
	eng.ObserveEdges(edges)
	if n := del.DeleteEdges(edges[:200]); n != 200 {
		t.Fatalf("DeleteEdges applied %d of 200", n)
	}
	if got := eng.NumEdges(); got != 300 {
		t.Fatalf("NumEdges = %d after deletes, want 300", got)
	}
	if _, ok := DegradedRegistersOf(eng); !ok {
		t.Fatal("dynamic engine has no degraded gauge")
	}

	var img bytes.Buffer
	if err := eng.Save(&img); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadAnyEngine(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := ModeOf(restored); got != ModeDynamic {
		t.Fatalf("restored ModeOf = %q, want %q", got, ModeDynamic)
	}
	if _, ok := DeleterOf(restored); !ok {
		t.Fatal("restored dynamic engine has no deleter")
	}
	for _, m := range AllMeasures {
		a, err := eng.Score(m, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Score(m, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("measure %v: %v before save, %v after restore", m, a, b)
		}
	}
}

// TestDeleterOfNonDynamic: every other mode must report no deletion
// capability rather than a deleter that silently cannot delete.
func TestDeleterOfNonDynamic(t *testing.T) {
	for _, mode := range []string{ModeSingle, ModeConcurrent, ModeDirected, ModeConcurrentDirected} {
		eng, err := NewEngine(EngineSpec{Mode: mode, Config: Config{K: 8}})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := DeleterOf(eng); ok {
			t.Fatalf("mode %s claims a deletion capability", mode)
		}
		if _, ok := DegradedRegistersOf(eng); ok {
			t.Fatalf("mode %s claims a degraded gauge", mode)
		}
	}
}

// TestDynamicConcurrentDeletesRaceScoreBatch is the -race stress: a
// Synchronized dynamic engine must serve concurrent ScoreBatch/Score
// traffic while deletes and inserts land from writer goroutines. Run
// with -race; correctness of the scores under churn is covered by the
// core tests, this pins the locking discipline (DeleterOf must route
// deletes through the wrapper's write lock).
func TestDynamicConcurrentDeletesRaceScoreBatch(t *testing.T) {
	eng, err := NewEngine(EngineSpec{Mode: ModeDynamic, Config: Config{K: 16, Seed: 7}, RecoverDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	del, ok := DeleterOf(eng)
	if !ok {
		t.Fatal("no deleter")
	}
	r := rand.New(rand.NewSource(13))
	edges := dynTestEdges(r, 2000, 80)
	eng.ObserveEdges(edges)

	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	candidates := make([]uint64, 80)
	for i := range candidates {
		candidates[i] = uint64(i)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // deleter
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			del.DeleteEdges(edges[i*20 : i*20+20])
		}
	}()
	go func() { // inserter
		defer wg.Done()
		r := rand.New(rand.NewSource(17))
		for i := 0; i < rounds; i++ {
			eng.ObserveEdges(dynTestEdges(r, 20, 80))
		}
	}()
	go func() { // reader
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := eng.ScoreBatch(AdamicAdar, uint64(i%80), candidates); err != nil {
				t.Error(err)
				return
			}
			if _, err := eng.Score(Jaccard, 1, 2); err != nil {
				t.Error(err)
				return
			}
			eng.Degree(uint64(i % 80))
			DegradedRegistersOf(eng)
		}
	}()
	wg.Wait()
}
