package linkpred

import (
	"fmt"

	"linkpred/internal/candidates"
	"linkpred/internal/stream"
)

// Recommender is a fully streaming link recommender: it couples a
// Predictor (scores any pair in O(K)) with a bounded-memory candidate
// tracker (discovers *which* pairs are worth scoring from the stream
// itself), so Recommend works end to end without any access to the
// graph — the missing piece when the caller cannot enumerate two-hop
// neighborhoods.
//
// State per vertex is O(K + recent + pool) — constant, like everything
// else in this library. Not safe for concurrent use.
type Recommender struct {
	pred    *Predictor
	tracker *candidates.Tracker
}

// RecommenderConfig parameterises a Recommender.
type RecommenderConfig struct {
	// Predictor is the sketch configuration (see Config).
	Predictor Config
	// RecentNeighbors is the per-vertex ring of most recent neighbors
	// used to discover fresh two-hop paths. Default 8.
	RecentNeighbors int
	// PoolSize is the per-vertex candidate pool (a space-saving summary
	// of the most frequent two-hop partners). Larger pools raise recall
	// of the best candidates at linear space cost. Default 64.
	PoolSize int
}

// NewRecommender returns an empty Recommender. Zero values for
// RecentNeighbors and PoolSize select the defaults.
func NewRecommender(cfg RecommenderConfig) (*Recommender, error) {
	if cfg.RecentNeighbors == 0 {
		cfg.RecentNeighbors = 8
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 64
	}
	pred, err := New(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	tracker, err := candidates.New(cfg.RecentNeighbors, cfg.PoolSize)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &Recommender{pred: pred, tracker: tracker}, nil
}

// Observe folds one edge into both the sketches and the candidate
// tracker.
func (r *Recommender) Observe(u, v uint64) {
	r.pred.Observe(u, v)
	r.tracker.ProcessEdge(stream.Edge{U: u, V: v})
}

// ObserveEdge folds a timestamped edge.
func (r *Recommender) ObserveEdge(e Edge) { r.Observe(e.U, e.V) }

// Recommend returns the k best predicted partners for u under the given
// measure, drawn from u's streamed candidate pool. It returns nil for an
// unknown or so-far-isolated vertex.
func (r *Recommender) Recommend(m Measure, u uint64, k int) ([]Candidate, error) {
	cands := r.tracker.Candidates(u)
	if len(cands) == 0 {
		return nil, nil
	}
	return r.pred.TopK(m, u, cands, k)
}

// Candidates exposes u's raw candidate pool (ordered by two-hop
// co-occurrence frequency) for callers that score with their own logic.
func (r *Recommender) Candidates(u uint64) []uint64 { return r.tracker.Candidates(u) }

// Predictor exposes the underlying predictor for direct pair queries.
func (r *Recommender) Predictor() *Predictor { return r.pred }

// MemoryBytes returns the combined payload memory of sketches and
// candidate pools.
func (r *Recommender) MemoryBytes() int {
	return r.pred.MemoryBytes() + r.tracker.MemoryBytes()
}
