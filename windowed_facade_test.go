package linkpred_test

import (
	"bytes"
	"testing"
	"time"

	linkpred "linkpred"
)

func TestWindowedFacade(t *testing.T) {
	if _, err := linkpred.NewWindowed(linkpred.Config{K: 8}, 0, 4); err == nil {
		t.Error("window=0 should error")
	}
	if _, err := linkpred.NewWindowed(linkpred.Config{K: 8, EnableBiased: true}, 100, 4); err == nil {
		t.Error("EnableBiased should be rejected")
	}
	w, err := linkpred.NewWindowed(linkpred.Config{K: 64, Seed: 1}, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Window() != 100 || w.Config().K != 64 {
		t.Error("accessors wrong")
	}
	// Shared neighborhood now…
	for i := uint64(10); i < 30; i++ {
		w.ObserveEdge(linkpred.Edge{U: 1, V: i, T: 0})
		w.ObserveEdge(linkpred.Edge{U: 2, V: i, T: 0})
	}
	if j := w.Jaccard(1, 2); j != 1 {
		t.Errorf("fresh Jaccard = %v, want 1", j)
	}
	if cn := w.CommonNeighbors(1, 2); cn < 10 || cn > 30 {
		t.Errorf("CN = %v, want ≈20", cn)
	}
	if aa := w.AdamicAdar(1, 2); aa <= 0 {
		t.Errorf("AA = %v, want > 0", aa)
	}
	if !w.Seen(1) || w.Seen(999) {
		t.Error("Seen misreports")
	}
	if d := w.Degree(1); d < 10 || d > 30 {
		t.Errorf("Degree = %v, want ≈20", d)
	}
	if w.NumEdges() != 40 || w.MemoryBytes() <= 0 {
		t.Error("accounting wrong")
	}
	// …forgotten after the window passes.
	for ts := int64(10); ts <= 500; ts += 10 {
		w.ObserveEdge(linkpred.Edge{U: 1000 + uint64(ts), V: 2000 + uint64(ts), T: ts})
	}
	if w.Seen(1) {
		t.Error("expired vertex still visible")
	}
	if j := w.Jaccard(1, 2); j != 0 {
		t.Errorf("expired Jaccard = %v, want 0", j)
	}
}

func TestWindowedFacadeSaveLoad(t *testing.T) {
	w, _ := linkpred.NewWindowed(linkpred.Config{K: 32, Seed: 3}, 100, 4)
	for i := uint64(0); i < 50; i++ {
		w.ObserveEdge(linkpred.Edge{U: 1, V: 100 + i, T: int64(i)})
		w.ObserveEdge(linkpred.Edge{U: 2, V: 100 + i, T: int64(i)})
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := linkpred.LoadWindowed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Window() != w.Window() {
		t.Error("window geometry lost")
	}
	if loaded.Jaccard(1, 2) != w.Jaccard(1, 2) {
		t.Error("loaded windowed predictor diverges")
	}
	if _, err := linkpred.LoadWindowed(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("loading junk should error")
	}
}

func TestWindowedFacadeLargeGap(t *testing.T) {
	// The facade must inherit the O(1)-per-edge rotation: a T=0 edge
	// followed by an epoch-seconds edge completes instantly, and the
	// rotation counter stays bounded by the generation count.
	w, err := linkpred.NewWindowed(linkpred.Config{K: 32, Seed: 7}, 3600, 4)
	if err != nil {
		t.Fatal(err)
	}
	w.ObserveEdge(linkpred.Edge{U: 1, V: 2, T: 0})
	start := time.Now()
	w.ObserveEdge(linkpred.Edge{U: 3, V: 4, T: 1_700_000_000})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("large-gap ObserveEdge took %v", elapsed)
	}
	if w.Rotations() > 4 {
		t.Errorf("Rotations = %d, want <= 4", w.Rotations())
	}
	if w.Seen(1) {
		t.Error("pre-gap vertex should have expired")
	}
	if !w.Seen(3) {
		t.Error("post-gap edge lost")
	}
}
