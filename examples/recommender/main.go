// Recommender: fully streaming "people you may know" with zero graph
// access.
//
// The other examples keep an exact graph alongside the sketch for
// grading; this one shows the deployment story: *nothing* but the
// constant-space-per-vertex state — sketches for scoring, a bounded
// candidate tracker for discovery — ever sees the stream. At the end it
// builds the exact graph (offline, from a replay) purely to grade how
// good the blind recommendations were.
//
// Run with: go run ./examples/recommender
package main

import (
	"fmt"
	"log"

	linkpred "linkpred"
	"linkpred/internal/exact"
	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

func main() {
	rec, err := linkpred.NewRecommender(linkpred.RecommenderConfig{
		Predictor:       linkpred.Config{K: 256, Seed: 9, DistinctDegrees: true},
		RecentNeighbors: 8,
		PoolSize:        64,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The online phase: only the recommender sees the stream.
	src, err := gen.Coauthor(5_000, 30_000, 25, 123)
	if err != nil {
		log.Fatal(err)
	}
	edges, err := stream.Collect(src)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range edges {
		rec.Observe(e.U, e.V)
	}
	fmt.Printf("streamed %d edges; total streaming state %.1f MiB (%.0f B/vertex)\n\n",
		rec.Predictor().NumEdges(),
		float64(rec.MemoryBytes())/(1<<20),
		float64(rec.MemoryBytes())/float64(rec.Predictor().NumVertices()))

	// Offline grading replay (a real deployment would skip this).
	g := graph.New()
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}

	x := rng.NewXoshiro256(7)
	vs := g.VertexSlice()
	var qualitySum float64
	graded := 0
	var shown bool
	for graded < 100 {
		u := vs[x.Intn(len(vs))]
		if len(g.TwoHopNeighbors(u)) < 15 {
			continue
		}
		exactTop := exact.TopK(g, exact.MeasureCommonNeighbors, u, 5)
		if len(exactTop) < 5 || exactTop[0].Score == 0 {
			continue
		}
		recs, err := rec.Recommend(linkpred.CommonNeighbors, u, 15)
		if err != nil {
			log.Fatal(err)
		}
		var fresh []linkpred.Candidate
		for _, r := range recs {
			if !g.HasEdge(u, r.V) { // serving-time "already friends" filter
				fresh = append(fresh, r)
			}
		}
		if len(fresh) < 5 {
			continue
		}
		var optimum, captured float64
		for _, s := range exactTop {
			optimum += s.Score
		}
		for _, r := range fresh[:5] {
			captured += exact.CommonNeighbors(g, u, r.V)
		}
		qualitySum += captured / optimum
		graded++
		if !shown {
			shown = true
			fmt.Printf("example: blind recommendations for author %d (degree %d):\n", u, g.Degree(u))
			for i, r := range fresh[:5] {
				fmt.Printf("  %d. author %-6d estimated shared collaborators %.1f (true: %.0f)\n",
					i+1, r.V, r.Score, exact.CommonNeighbors(g, u, r.V))
			}
			fmt.Println()
		}
	}
	fmt.Printf("graded %d authors: blind top-5 captures %.0f%% of the optimal top-5 overlap mass\n",
		graded, 100*qualitySum/float64(graded))
	fmt.Println("(optimum computed offline with the full graph; the recommender never saw it)")
}
