// Social: friend recommendation on a social-network stream, with the
// sketch's recommendations validated against the exact ranking.
//
// The scenario the paper's introduction motivates: a social platform
// receives friendship events as a stream far too large to snapshot, yet
// wants to recommend "people you may know" — the vertices with the
// highest neighborhood overlap. This example runs a Flickr-like
// heavy-tailed stream through the sketch predictor, produces
// recommendations for a set of users, and reports how often the sketch's
// top picks agree with the exact (full-graph) top picks it cannot afford
// in production.
//
// Run with: go run ./examples/social
package main

import (
	"fmt"
	"log"

	linkpred "linkpred"
	"linkpred/internal/exact"
	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

func main() {
	const k = 256
	p, err := linkpred.New(linkpred.Config{K: k, Seed: 1, DistinctDegrees: true})
	if err != nil {
		log.Fatal(err)
	}

	// Heavy-tailed "social" stream (power-law configuration model).
	src, err := gen.ConfigModel(20_000, 300_000, 2.2, 99)
	if err != nil {
		log.Fatal(err)
	}
	// The exact graph exists here only to grade the recommendations.
	g := graph.New()
	if err := stream.ForEach(src, func(e stream.Edge) error {
		p.Observe(e.U, e.V)
		g.AddEdge(e.U, e.V)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream ingested: %d edges, %d users\n", p.NumEdges(), p.NumVertices())
	fmt.Printf("sketch: %.1f MiB; exact graph: %.1f MiB\n\n",
		float64(p.MemoryBytes())/(1<<20), float64(g.MemoryBytes())/(1<<20))

	// Recommend for 200 random users with enough activity to matter.
	x := rng.NewXoshiro256(5)
	vs := g.VertexSlice()
	const topN = 5
	users, hits, total := 0, 0, 0
	var exampleShown bool
	for users < 200 {
		u := vs[x.Intn(len(vs))]
		cands := g.TwoHopNeighbors(u) // candidate generation (application-side)
		if len(cands) < 20 {
			continue
		}
		users++
		recs, err := p.TopK(linkpred.Jaccard, u, cands, topN)
		if err != nil {
			log.Fatal(err)
		}
		// Exact top-N for grading.
		exactTop := exact.TopK(g, exact.MeasureJaccard, u, topN)
		exactSet := make(map[uint64]bool, len(exactTop))
		for _, s := range exactTop {
			exactSet[s.V] = true
		}
		for _, r := range recs {
			total++
			if exactSet[r.V] {
				hits++
			}
		}
		if !exampleShown && len(recs) == topN {
			exampleShown = true
			fmt.Printf("example: recommendations for user %d (degree %d):\n", u, g.Degree(u))
			for i, r := range recs {
				marker := " "
				if exactSet[r.V] {
					marker = "*"
				}
				fmt.Printf("  %d. user %-8d jaccard %.4f %s\n", i+1, r.V, r.Score, marker)
			}
			fmt.Println("  (* = also in the exact top-5)")
			fmt.Println()
		}
	}
	fmt.Printf("graded %d users: %d/%d sketch recommendations (%.0f%%) appear in the exact top-%d\n",
		users, hits, total, 100*float64(hits)/float64(total), topN)
}
