// Quickstart: the smallest end-to-end use of the linkpred public API.
//
// It streams a synthetic social network through a Predictor and asks the
// three link-prediction questions about a vertex pair — without ever
// materialising the graph.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	linkpred "linkpred"
	"linkpred/internal/gen"
	"linkpred/internal/stream"
)

func main() {
	// Size the sketch from an accuracy target instead of guessing:
	// |estimated − true Jaccard| ≤ 0.08 with probability 95%.
	k := linkpred.SketchSizeFor(0.08, 0.05)
	fmt.Printf("sketch size for (eps=0.08, delta=0.05): k = %d registers/vertex\n\n", k)

	p, err := linkpred.New(linkpred.Config{K: k, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Any edge source works; here, a preferential-attachment stream of
	// 50k vertices. In production this loop is your event feed.
	src, err := gen.BarabasiAlbert(50_000, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := stream.ForEach(src, func(e stream.Edge) error {
		p.Observe(e.U, e.V)
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ingested %d edges over %d vertices\n", p.NumEdges(), p.NumVertices())
	fmt.Printf("sketch memory: %.1f MiB (%.0f bytes/vertex, constant in stream length)\n\n",
		float64(p.MemoryBytes())/(1<<20),
		float64(p.MemoryBytes())/float64(p.NumVertices()))

	// Query any pair, any time — O(k) per query.
	u, v := uint64(10), uint64(25)
	fmt.Printf("pair (%d, %d):\n", u, v)
	fmt.Printf("  estimated Jaccard coefficient: %.4f\n", p.Jaccard(u, v))
	fmt.Printf("  estimated common neighbors:    %.2f\n", p.CommonNeighbors(u, v))
	fmt.Printf("  estimated Adamic-Adar index:   %.3f\n", p.AdamicAdar(u, v))

	// Rank candidate partners for a vertex. Candidate generation is the
	// application's choice; here, the first 1000 vertices.
	candidates := make([]uint64, 1000)
	for i := range candidates {
		candidates[i] = uint64(i)
	}
	top, err := p.TopK(linkpred.AdamicAdar, u, candidates, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-5 predicted links for vertex %d (Adamic-Adar):\n", u)
	for i, c := range top {
		fmt.Printf("  %d. vertex %-6d score %.3f\n", i+1, c.V, c.Score)
	}
}
