// Similarity: whole-graph neighborhood search with the LSH index,
// applied to duplicate-author (alias) detection.
//
// Pairwise estimators answer "how similar are u and v?"; the banding
// index answers "who is similar to u?" across all n vertices in
// O(bands) bucket lookups. The classic use is entity resolution: the
// same person publishing under two ids collaborates with the same
// people, so the two ids have near-identical neighborhoods. This
// example streams a co-authorship network with 25 planted aliases
// (each alias receives ~70% of its twin's collaborations plus noise),
// then finds them by neighborhood similarity alone.
//
// Run with: go run ./examples/similarity
package main

import (
	"fmt"
	"log"

	linkpred "linkpred"
	"linkpred/internal/exact"
	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

func main() {
	p, err := linkpred.New(linkpred.Config{K: 256, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	src, err := gen.Coauthor(8_000, 35_000, 40, 404)
	if err != nil {
		log.Fatal(err)
	}
	edges, err := stream.Collect(stream.Dedup(src))
	if err != nil {
		log.Fatal(err)
	}
	// Plant 25 aliases: id+aliasOffset republishes ~70% of its twin's
	// collaborations.
	const nAliases = 25
	const aliasOffset = 1_000_000
	x := rng.NewXoshiro256(9)
	aliasOf := make(map[uint64]uint64, nAliases)
	degree := map[uint64]int{}
	for _, e := range edges {
		degree[e.U]++
		degree[e.V]++
	}
	for len(aliasOf) < nAliases {
		u := uint64(x.Intn(8000))
		if degree[u] >= 15 {
			aliasOf[u] = u + aliasOffset
		}
	}
	var withAliases []stream.Edge
	withAliases = append(withAliases, edges...)
	for _, e := range edges {
		if a, ok := aliasOf[e.U]; ok && x.Float64() < 0.7 {
			withAliases = append(withAliases, stream.Edge{U: a, V: e.V})
		}
		if a, ok := aliasOf[e.V]; ok && x.Float64() < 0.7 {
			withAliases = append(withAliases, stream.Edge{U: e.U, V: a})
		}
	}
	g := graph.New() // exact graph for grading only
	for _, e := range withAliases {
		p.Observe(e.U, e.V)
		g.AddEdge(e.U, e.V)
	}

	// 32 bands × 4 rows: S-curve threshold (1/32)^(1/4) ≈ 0.42.
	idx, err := p.BuildSimilarityIndex(32, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d authors: %.1f MiB of sketches + %.1f MiB of LSH buckets\n\n",
		p.NumVertices(), float64(p.MemoryBytes())/(1<<20), float64(idx.MemoryBytes())/(1<<20))

	// Search each aliased author: does its twin surface as the top hit?
	foundTop, foundAny := 0, 0
	var totalCands int
	var shown bool
	for u, alias := range aliasOf {
		sims := idx.Similar(u, 0.2, 5)
		totalCands += len(idx.Candidates(u))
		for rank, sv := range sims {
			if sv.V == alias {
				foundAny++
				if rank == 0 {
					foundTop++
				}
				if !shown {
					shown = true
					fmt.Printf("example: author %d (degree %d) — top profile matches:\n", u, g.Degree(u))
					for i, s2 := range sims {
						marker := " "
						if s2.V == alias {
							marker = "← planted alias"
						}
						fmt.Printf("  %d. author %-8d estimated J %.3f (exact %.3f) %s\n",
							i+1, s2.V, s2.Jaccard, exact.Jaccard(g, u, s2.V), marker)
					}
					fmt.Println()
				}
				break
			}
		}
	}
	fmt.Printf("alias detection over %d planted duplicates:\n", nAliases)
	fmt.Printf("  twin surfaced in top-5: %d/%d; ranked first: %d/%d\n",
		foundAny, nAliases, foundTop, nAliases)
	fmt.Printf("  mean candidates examined per query: %.1f (full scan would be %d)\n",
		float64(totalCands)/float64(nAliases), g.NumVertices()-1)
}
