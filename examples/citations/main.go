// Citations: directed link prediction on a citation stream — suggest
// references for new papers from the live stream of citations.
//
// The directed predictor keeps separate out- and in-neighborhood
// sketches per paper, so the candidate arc "paper u should cite paper v"
// is scored against the directed two-path structure u → w → v ("papers u
// already cites that themselves cite v"). This example streams a
// preferential citation network, then grades reference suggestions for
// recent papers against the exact directed measures.
//
// Run with: go run ./examples/citations
package main

import (
	"fmt"
	"log"

	linkpred "linkpred"
	"linkpred/internal/exact"
	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

func main() {
	d, err := linkpred.NewDirected(linkpred.Config{K: 256, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}

	const papers = 20_000
	src, err := gen.Citation(papers, 12, 0.3, 2026)
	if err != nil {
		log.Fatal(err)
	}
	arcs, err := stream.Collect(src)
	if err != nil {
		log.Fatal(err)
	}
	g := graph.NewDi() // exact graph kept only for grading
	for _, a := range arcs {
		d.Observe(a.U, a.V)
		g.AddArc(a.U, a.V)
	}
	fmt.Printf("streamed %d citations across %d papers; sketch memory %.1f MiB\n\n",
		d.NumArcs(), d.NumVertices(), float64(d.MemoryBytes())/(1<<20))

	// For recent papers, rank candidate references from their two-hop
	// citation frontier and compare against the exact directed AA order.
	x := rng.NewXoshiro256(5)
	const topN = 5
	var qualitySum float64
	graded := 0
	var shown bool
	for graded < 100 {
		u := uint64(papers - 1 - x.Intn(2000)) // a recent paper
		// Candidate references: papers cited by u's references.
		seen := map[uint64]bool{}
		var cands []uint64
		g.OutNeighbors(u, func(w uint64) bool {
			g.OutNeighbors(w, func(v uint64) bool {
				if v != u && !g.HasArc(u, v) && !seen[v] {
					seen[v] = true
					cands = append(cands, v)
				}
				return true
			})
			return true
		})
		if len(cands) < 10 {
			continue
		}
		// Sketch ranking.
		type scored struct {
			v uint64
			s float64
		}
		best := make([]scored, 0, len(cands))
		for _, v := range cands {
			best = append(best, scored{v, d.AdamicAdar(u, v)})
		}
		for i := 0; i < len(best); i++ {
			for j := i + 1; j < len(best); j++ {
				if best[j].s > best[i].s || (best[j].s == best[i].s && best[j].v < best[i].v) {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		// Exact ranking for grading.
		exactBest := make([]scored, 0, len(cands))
		for _, v := range cands {
			exactBest = append(exactBest, scored{v, exact.DirectedAdamicAdar(g, u, v)})
		}
		for i := 0; i < len(exactBest); i++ {
			for j := i + 1; j < len(exactBest); j++ {
				if exactBest[j].s > exactBest[i].s || (exactBest[j].s == exactBest[i].s && exactBest[j].v < exactBest[i].v) {
					exactBest[i], exactBest[j] = exactBest[j], exactBest[i]
				}
			}
		}
		n := topN
		if len(best) < n {
			n = len(best)
		}
		// Grade by captured quality (the exact DAA mass of the sketch's
		// suggestions over the optimum's): exact scores tie heavily on
		// citation graphs, so raw set overlap would punish equally good
		// picks.
		exactSet := map[uint64]bool{}
		var optimum, captured float64
		for _, e := range exactBest[:n] {
			exactSet[e.v] = true
			optimum += e.s
		}
		for _, b := range best[:n] {
			captured += exact.DirectedAdamicAdar(g, u, b.v)
		}
		if optimum > 0 {
			qualitySum += captured / optimum
			graded++
		}
		if !shown {
			shown = true
			fmt.Printf("example: suggested references for paper %d (cites %d, cited by %.0f):\n",
				u, g.OutDegree(u), d.InDegree(u))
			for i, b := range best[:n] {
				marker := " "
				if exactSet[b.v] {
					marker = "*"
				}
				fmt.Printf("  %d. paper %-6d directed adamic-adar %.3f %s\n", i+1, b.v, b.s, marker)
			}
			fmt.Println("  (* = also in the exact top-5)")
			fmt.Println()
		}
	}
	fmt.Printf("graded %d recent papers: sketch suggestions capture %.0f%% of the optimal top-%d\n",
		graded, 100*qualitySum/float64(graded), topN)
	fmt.Println("(quality = exact directed Adamic-Adar mass of the suggestions / optimum's mass)")
}
