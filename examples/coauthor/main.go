// Coauthor: temporal collaboration prediction on a DBLP-like stream —
// predict *future* co-authorships from the past, comparing the sketch
// against the exact system and the reservoir-sampling baseline.
//
// This is the paper's end-to-end task run as an application: train on
// the first 80% of a co-authorship stream, then ask each system to
// separate the collaborations that really form in the final 20% from
// random author pairs that never collaborate. Reported per system: AUC,
// R-precision, and memory.
//
// Run with: go run ./examples/coauthor
package main

import (
	"fmt"
	"log"

	"linkpred/internal/baseline"
	"linkpred/internal/core"
	"linkpred/internal/eval"
	"linkpred/internal/gen"
	"linkpred/internal/stream"
)

func main() {
	// A community-structured co-authorship stream: 10k authors, ~40k
	// papers, 50 research communities.
	src, err := gen.Coauthor(10_000, 40_000, 50, 2026)
	if err != nil {
		log.Fatal(err)
	}
	edges, err := stream.Collect(src)
	if err != nil {
		log.Fatal(err)
	}
	task, err := eval.NewTemporalTask(edges, 0.8, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-authorship stream: %d edges; training on %d, predicting %d future collaborations\n\n",
		len(edges), len(task.Train), task.Positives())

	type system struct {
		name string
		sys  baseline.System
	}
	sketch, err := core.NewSketchStore(core.Config{K: 128, Seed: 3, Degrees: core.DegreeDistinctKMV})
	if err != nil {
		log.Fatal(err)
	}
	reservoir, err := baseline.NewReservoir(len(task.Train)/10, 4)
	if err != nil {
		log.Fatal(err)
	}
	systems := []system{
		{"exact (full graph)", baseline.NewExact()},
		{"sketch (k=128)", sketch},
		{"reservoir (10% edges)", reservoir},
	}

	fmt.Printf("%-22s %8s %14s %12s\n", "system", "AUC", "precision@N", "memory MiB")
	for _, s := range systems {
		res, err := eval.RunTemporal(task, s.sys, eval.ScoreAdamicAdar)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8.4f %14.4f %12.2f\n",
			s.name, res.AUC, res.PrecisionAtN, float64(res.MemoryBytes)/(1<<20))
	}
	fmt.Println("\nscoring measure: Adamic-Adar. Expected shape: sketch tracks exact; reservoir trails.")
}
