// Windowed-server: a sliding-window predictor served over HTTP with
// crash-safe durability — the full lpserver stack, driven as a library.
//
// A timestamped stream is POSTed to a windowed engine through the HTTP
// /ingest endpoint; every accepted batch is logged to a write-ahead log
// before it touches the store. The process then "crashes" (the server
// is abandoned mid-flight, no checkpoint, no graceful close) and
// reboots from the WAL directory alone: the recovered engine must
// answer every query byte-identically to the one that died. A second,
// graceful restart exercises the snapshot path — recovery from the
// checkpoint image instead of a full log replay.
//
// This is the same machinery `lpserver -mode windowed -wal-dir ...`
// runs in production; the example wires it by hand so each moving part
// is visible.
//
// Run with: go run ./examples/windowed-server
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	linkpred "linkpred"
	"linkpred/internal/server"
	"linkpred/internal/wal"
)

// node bundles one serving incarnation: the engine, its durable WAL
// pipeline, and a live HTTP listener.
type node struct {
	eng     linkpred.Engine
	durable *wal.Durable
	http    *http.Server
	url     string
}

// boot builds a windowed engine, recovers whatever state the WAL
// directory holds (snapshot + log tail), and starts serving it on a
// loopback port — the example-sized equivalent of
// `lpserver -mode windowed -window 3600 -gens 6 -wal-dir dir`.
func boot(dir string) (*node, error) {
	eng, err := linkpred.NewEngine(linkpred.EngineSpec{
		Mode:   linkpred.ModeWindowed,
		Config: linkpred.Config{K: 128, Seed: 7},
		Window: 3600, // one hour of Edge.T units...
		Gens:   6,    // ...expired in six 10-minute generations
	})
	if err != nil {
		return nil, err
	}

	// Recovery first: a snapshot (if any) replaces the empty engine —
	// the image's magic header selects the store — and the log tail
	// replays on top, timestamps intact, so window rotation state is
	// rebuilt exactly.
	res, err := wal.Recover(nil, dir, func(r io.Reader) error {
		loaded, err := linkpred.LoadAnyEngine(r)
		if err != nil {
			return err
		}
		eng = loaded
		return nil
	}, func(rec wal.Record) error {
		edges := make([]linkpred.Edge, len(rec.Edges))
		for i, e := range rec.Edges {
			edges[i] = linkpred.Edge{U: e.U, V: e.V, T: e.T}
		}
		eng.ObserveEdges(edges)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("wal recovery: %w", err)
	}
	if res.SnapshotLoaded || res.Replay.Records > 0 {
		fmt.Printf("  recovered: snapshot seq %d + %d replayed edges -> %d vertices, %d edges\n",
			res.SnapshotSeq, res.Replay.Edges, eng.NumVertices(), eng.NumEdges())
	}

	w, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncAlways, NextSeq: res.LastSeq() + 1})
	if err != nil {
		return nil, err
	}
	durable := wal.NewDurable(w, dir, wal.KindEdge, eng.Save)
	srv := server.NewWithOptions(eng, server.Options{Durability: durable, Recovery: &res})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	return &node{
		eng:     eng,
		durable: durable,
		http:    hs,
		url:     "http://" + ln.Addr().String(),
	}, nil
}

func post(url, body string) string {
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func main() {
	dir, err := os.MkdirTemp("", "windowed-server-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- incarnation 1: fresh boot, durable ingest -------------------
	fmt.Println("boot #1: empty WAL directory, fresh windowed engine")
	n1, err := boot(dir)
	if err != nil {
		log.Fatal(err)
	}

	// A shared-neighborhood stream inside one window: vertices 1 and 2
	// co-occur with hubs 100..119, timestamps spread over ~30 minutes.
	var b strings.Builder
	t := int64(1000)
	for h := uint64(100); h < 120; h++ {
		fmt.Fprintf(&b, "1 %d %d\n2 %d %d\n", h, t, h, t+40)
		t += 80
	}
	fmt.Printf("  ingest: %s", post(n1.url+"/ingest", b.String()))
	pairBefore := get(n1.url + "/pair?u=1&v=2")
	topkBefore := get(n1.url + "/topk?u=1&candidates=2,100,101,102&k=3&measure=jaccard")
	fmt.Printf("  /pair(1,2) = %s", pairBefore)

	// ---- crash ------------------------------------------------------
	// No checkpoint, no graceful close: the listener is torn down and
	// the engine abandoned. Every accepted /ingest batch was logged and
	// fsynced *before* it was applied, so the state survives in the WAL.
	n1.http.Close()
	fmt.Println("crash: process gone, state lives only in", dir)

	// ---- incarnation 2: recovery ------------------------------------
	fmt.Println("boot #2: recovering from the write-ahead log")
	n2, err := boot(dir)
	if err != nil {
		log.Fatal(err)
	}
	pairAfter := get(n2.url + "/pair?u=1&v=2")
	topkAfter := get(n2.url + "/topk?u=1&candidates=2,100,101,102&k=3&measure=jaccard")
	grade := func(name, before, after string) {
		if before == after {
			fmt.Printf("  %s after recovery: byte-identical ✓\n", name)
		} else {
			fmt.Printf("  %s DIVERGED:\n    before %s    after  %s", name, before, after)
			os.Exit(1)
		}
	}
	grade("/pair", pairBefore, pairAfter)
	grade("/topk", topkBefore, topkAfter)

	// Keep streaming on the recovered node — durability carries across
	// incarnations; these edges land in the same log sequence.
	fmt.Printf("  ingest more: %s", post(n2.url+"/ingest", "1 2 4000\n"))
	pairLinked := get(n2.url + "/pair?u=1&v=2")

	// ---- graceful restart: snapshot path ----------------------------
	// Close() checkpoints the engine into a snapshot and prunes the
	// covered log segments, so boot #3 loads one image instead of
	// replaying every record since the beginning.
	n2.http.Close()
	if err := n2.durable.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("graceful shutdown: checkpoint written, covered segments pruned")

	fmt.Println("boot #3: recovering from the checkpoint snapshot")
	n3, err := boot(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer n3.http.Close()
	defer n3.durable.Close()
	grade("/pair", pairLinked, get(n3.url+"/pair?u=1&v=2"))
	fmt.Printf("  /stats = %s", get(n3.url+"/stats"))
	fmt.Println("done: one WAL directory served three incarnations without losing an edge")
}
