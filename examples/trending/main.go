// Trending: sliding-window link prediction on an evolving stream —
// "who is collaborating *now*", not "who ever collaborated".
//
// The stream drifts: community structure is reshuffled partway through
// (research groups dissolve and reform). A full-history predictor keeps
// recommending stale partners; the windowed predictor tracks the current
// structure. This example measures both against the *current-phase*
// ground truth, and shows the same pair scored by each.
//
// Run with: go run ./examples/trending
package main

import (
	"fmt"
	"log"

	linkpred "linkpred"
	"linkpred/internal/exact"
	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

func main() {
	const authors = 3000
	phase := func(seed uint64) []stream.Edge {
		src, err := gen.Coauthor(authors, 12_000, 30, seed)
		if err != nil {
			log.Fatal(err)
		}
		es, err := stream.Collect(stream.Dedup(src))
		if err != nil {
			log.Fatal(err)
		}
		return es
	}
	// Phase 2 remaps identities so its communities are unrelated to
	// phase 1's.
	p1 := phase(101)
	p2raw := phase(202)
	remap := func(u uint64) uint64 { return (u*2654435761 + 13) % authors }
	var all []stream.Edge
	ts := int64(0)
	for _, e := range p1 {
		all = append(all, stream.Edge{U: e.U, V: e.V, T: ts})
		ts++
	}
	var p2 []stream.Edge
	for _, e := range p2raw {
		u, v := remap(e.U), remap(e.V)
		if u == v {
			continue
		}
		ne := stream.Edge{U: u, V: v, T: ts}
		all = append(all, ne)
		p2 = append(p2, ne)
		ts++
	}

	full, err := linkpred.New(linkpred.Config{K: 128, Seed: 7, DistinctDegrees: true})
	if err != nil {
		log.Fatal(err)
	}
	windowed, err := linkpred.NewWindowed(linkpred.Config{K: 128, Seed: 7},
		int64(len(p2))*5/4, 4) // window sized to roughly the current phase
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range all {
		full.Observe(e.U, e.V)
		windowed.ObserveEdge(linkpred.Edge{U: e.U, V: e.V, T: e.T})
	}

	// Ground truth: the current-phase graph only.
	g := graph.New()
	for _, e := range p2 {
		g.AddEdge(e.U, e.V)
	}
	x := rng.NewXoshiro256(11)
	vs := g.VertexSlice()
	var fullErr, winErr float64
	n := 0
	for n < 1000 {
		u, v := vs[x.Intn(len(vs))], vs[x.Intn(len(vs))]
		if u == v {
			continue
		}
		truth := exact.Jaccard(g, u, v)
		fullErr += abs(full.Jaccard(u, v) - truth)
		winErr += abs(windowed.Jaccard(u, v) - truth)
		n++
	}
	fmt.Printf("stream: %d edges of old structure, then %d of the current structure\n\n", len(p1), len(p2))
	fmt.Printf("Jaccard MAE vs the CURRENT graph over %d pairs:\n", n)
	fmt.Printf("  full-history predictor: %.4f (polluted by stale edges)\n", fullErr/float64(n))
	fmt.Printf("  windowed predictor:     %.4f\n\n", winErr/float64(n))

	// One concrete pair: strongly linked now.
	var bu, bv uint64
	best := 0.0
	for i := 0; i < 3000; i++ {
		u, v := vs[x.Intn(len(vs))], vs[x.Intn(len(vs))]
		if u != v {
			if j := exact.Jaccard(g, u, v); j > best {
				best, bu, bv = j, u, v
			}
		}
	}
	fmt.Printf("example pair (%d, %d): current true Jaccard %.3f\n", bu, bv, best)
	fmt.Printf("  full-history estimate: %.3f\n", full.Jaccard(bu, bv))
	fmt.Printf("  windowed estimate:     %.3f\n", windowed.Jaccard(bu, bv))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
