// Anomaly: streaming anomalous-edge detection — flag arriving edges whose
// endpoints have suspiciously little neighborhood overlap.
//
// In fraud and intrusion settings, an edge between two vertices that
// share no neighborhood context ("out of the blue" links) is a classic
// anomaly signal. A snapshot approach cannot keep up with the stream;
// the sketch predictor scores every arriving edge in O(k) *before*
// folding it in. This example injects random cross-community edges into
// a community-structured stream and measures how well the
// at-arrival Jaccard estimate separates injected edges from organic
// ones.
//
// Run with: go run ./examples/anomaly
package main

import (
	"fmt"
	"log"

	linkpred "linkpred"
	"linkpred/internal/eval"
	"linkpred/internal/gen"
	"linkpred/internal/rng"
	"linkpred/internal/stream"
)

func main() {
	// Organic stream: strongly-clustered co-authorship traffic.
	src, err := gen.Coauthor(5_000, 30_000, 25, 11)
	if err != nil {
		log.Fatal(err)
	}
	organic, err := stream.Collect(src)
	if err != nil {
		log.Fatal(err)
	}

	// Inject 1% random edges (uniform endpoint pairs — no community or
	// neighborhood structure) at random stream positions after a warmup.
	x := rng.NewXoshiro256(13)
	warmup := len(organic) / 4
	type event struct {
		e        stream.Edge
		injected bool
	}
	events := make([]event, 0, len(organic)+len(organic)/100)
	for i, e := range organic {
		events = append(events, event{e: e})
		if i > warmup && x.Float64() < 0.01 {
			u := x.Uint64() % 5000
			v := x.Uint64() % 5000
			if u != v {
				events = append(events, event{e: stream.Edge{U: u, V: v}, injected: true})
			}
		}
	}

	p, err := linkpred.New(linkpred.Config{K: 128, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}

	// Score each post-warmup edge at arrival (before ingesting it), then
	// ingest. Anomaly score = −Jaccard: low overlap ⇒ more anomalous.
	var scores []float64
	var labels []bool
	flagged, injectedSeen := 0, 0
	const threshold = 0.005 // alert when estimated Jaccard falls below this
	var alertsOnInjected, alerts int
	for i, ev := range events {
		if i > warmup && p.Seen(ev.e.U) && p.Seen(ev.e.V) && !ev.e.IsSelfLoop() {
			j := p.Jaccard(ev.e.U, ev.e.V)
			scores = append(scores, -j)
			labels = append(labels, ev.injected)
			if ev.injected {
				injectedSeen++
			}
			if j < threshold {
				alerts++
				if ev.injected {
					alertsOnInjected++
				}
				flagged++
			}
		}
		p.Observe(ev.e.U, ev.e.V)
	}

	auc, err := eval.AUC(scores, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d events (%d injected anomalies scored)\n", len(events), injectedSeen)
	fmt.Printf("at-arrival anomaly AUC (score = -estimated Jaccard): %.4f\n", auc)
	fmt.Printf("threshold alerts: %d raised, %d on injected edges (%.0f%% precision, %.0f%% recall)\n",
		alerts, alertsOnInjected,
		100*float64(alertsOnInjected)/float64(max(alerts, 1)),
		100*float64(alertsOnInjected)/float64(max(injectedSeen, 1)))
	fmt.Println("\nexpected shape: AUC well above 0.5 — organic edges in a clustered stream")
	fmt.Println("arrive with neighborhood overlap; injected uniform edges do not.")
}
