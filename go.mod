module linkpred

go 1.22
