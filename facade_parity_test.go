package linkpred_test

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"sync"
	"testing"

	linkpred "linkpred"
)

// parityEngines builds one engine of every mode over the same edge
// stream (read as arcs by the directed modes, with timestamps inside one
// window generation by the windowed mode) and returns them keyed by mode
// name. All stores are quiescent by the time the map is returned.
func parityEngines(t *testing.T) map[string]linkpred.Engine {
	t.Helper()
	cfg := linkpred.Config{K: 64, Seed: 7, DistinctDegrees: true}

	engines := make(map[string]linkpred.Engine)
	for _, mode := range []string{
		linkpred.ModeSingle,
		linkpred.ModeConcurrent,
		linkpred.ModeDirected,
		linkpred.ModeConcurrentDirected,
		linkpred.ModeWindowed,
	} {
		e, err := linkpred.NewEngine(linkpred.EngineSpec{
			Mode:   mode,
			Config: cfg,
			Shards: 4,
			Window: 1 << 40, // one giant window: nothing expires
			Gens:   4,
		})
		if err != nil {
			t.Fatalf("NewEngine(%s): %v", mode, err)
		}
		engines[mode] = e
	}

	rng := rand.New(rand.NewSource(11))
	edges := make([]linkpred.Edge, 0, 600)
	for i := 0; i < 600; i++ {
		u, v := uint64(rng.Intn(60)), uint64(rng.Intn(60))
		edges = append(edges, linkpred.Edge{U: u, V: v, T: int64(i)})
	}
	for _, e := range engines {
		e.ObserveEdges(edges)
	}
	return engines
}

// TestFacadeParity is the table test over the measure × facade × entry
// point matrix: for every mode and every measure, Score, ScoreBatch, and
// TopK must succeed and agree with each other bit-for-bit on a quiescent
// store — ScoreBatch[i] equals Score(candidates[i]), and TopK is exactly
// the sequential sort-by-(score, id) reference over the same scores.
// This is what "one engine core" means operationally: no mode has its
// own divergent dispatch path for any measure.
func TestFacadeParity(t *testing.T) {
	engines := parityEngines(t)

	const src = uint64(3)
	candidates := make([]uint64, 0, 59)
	for v := uint64(0); v < 60; v++ {
		if v != src {
			candidates = append(candidates, v)
		}
	}

	for mode, e := range engines {
		for _, m := range linkpred.AllMeasures {
			t.Run(mode+"/"+m.String(), func(t *testing.T) {
				batch, err := e.ScoreBatch(m, src, candidates)
				if err != nil {
					t.Fatalf("ScoreBatch: %v", err)
				}
				if len(batch) != len(candidates) {
					t.Fatalf("ScoreBatch returned %d scores for %d candidates", len(batch), len(candidates))
				}
				for i, v := range candidates {
					want, err := e.Score(m, src, v)
					if err != nil {
						t.Fatalf("Score(%d): %v", v, err)
					}
					if batch[i] != want && !(math.IsNaN(batch[i]) && math.IsNaN(want)) {
						t.Fatalf("ScoreBatch[%d] (v=%d) = %v, want Score = %v", i, v, batch[i], want)
					}
				}

				got, err := e.TopK(m, src, candidates, 10)
				if err != nil {
					t.Fatalf("TopK: %v", err)
				}
				want := referenceTopK(src, candidates, batch, 10)
				if len(got) != len(want) {
					t.Fatalf("TopK returned %d results, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("TopK[%d] = %+v, want %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// referenceTopK is an independent oracle: full sort of the batch scores
// by (score desc, id asc), NaN after everything, truncated to k.
func referenceTopK(src uint64, candidates []uint64, scores []float64, k int) []linkpred.Candidate {
	out := make([]linkpred.Candidate, 0, len(candidates))
	for i, v := range candidates {
		if v == src {
			continue
		}
		out = append(out, linkpred.Candidate{V: v, Score: scores[i]})
	}
	// Insertion sort: small N, and it keeps the oracle free of sort.Slice
	// comparator subtleties under NaN.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			aBetter := false
			na, nb := math.IsNaN(a.Score), math.IsNaN(b.Score)
			switch {
			case na != nb:
				aBetter = nb
			case a.Score != b.Score:
				aBetter = a.Score > b.Score
			default:
				aBetter = a.V < b.V
			}
			if aBetter {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TestFacadeParityAcrossModes asserts the cross-mode agreements that
// must hold exactly: the sharded facade reproduces the single-writer
// facade bit-for-bit on the same stream (undirected and directed), and a
// windowed store whose window never expired anything agrees with the
// whole-stream Predictor on every measure (both use KMV distinct
// degrees here, and a single live generation merges to the same
// registers the plain store holds).
func TestFacadeParityAcrossModes(t *testing.T) {
	engines := parityEngines(t)

	pairs := [][2]string{
		{linkpred.ModeSingle, linkpred.ModeConcurrent},
		{linkpred.ModeDirected, linkpred.ModeConcurrentDirected},
	}
	for _, pr := range pairs {
		a, b := engines[pr[0]], engines[pr[1]]
		for _, m := range linkpred.AllMeasures {
			for u := uint64(0); u < 30; u++ {
				for v := uint64(0); v < 30; v++ {
					sa, errA := a.Score(m, u, v)
					sb, errB := b.Score(m, u, v)
					if errA != nil || errB != nil {
						t.Fatalf("%s/%s Score error: %v / %v", pr[0], pr[1], errA, errB)
					}
					if sa != sb && !(math.IsNaN(sa) && math.IsNaN(sb)) {
						t.Fatalf("%v(%d,%d): %s=%v, %s=%v", m, u, v, pr[0], sa, pr[1], sb)
					}
				}
			}
		}
	}

	// Windowed-with-infinite-window vs Predictor.
	single, windowed := engines[linkpred.ModeSingle], engines[linkpred.ModeWindowed]
	for _, m := range linkpred.AllMeasures {
		for u := uint64(0); u < 30; u++ {
			for v := u + 1; v < 30; v++ {
				ss, _ := single.Score(m, u, v)
				sw, _ := windowed.Score(m, u, v)
				if ss != sw {
					t.Fatalf("%v(%d,%d): single=%v, windowed=%v", m, u, v, ss, sw)
				}
			}
		}
	}
}

// tieredParityEngines is parityEngines with a register-budget ladder
// and a skewed stream: hub vertices cross both promotion thresholds
// mid-batch while the tail stays in the smallest tier, so every
// query below scores mixed-tier pairs.
func tieredParityEngines(t *testing.T) map[string]linkpred.Engine {
	t.Helper()
	cfg := linkpred.Config{
		K:               32,
		Seed:            7,
		DistinctDegrees: true,
		Tiers: [linkpred.MaxTiers]linkpred.Tier{
			{K: 8, PromoteAt: 0}, {K: 16, PromoteAt: 6}, {K: 32, PromoteAt: 24},
		},
	}
	engines := make(map[string]linkpred.Engine)
	for _, mode := range []string{
		linkpred.ModeSingle,
		linkpred.ModeConcurrent,
		linkpred.ModeDirected,
		linkpred.ModeConcurrentDirected,
		linkpred.ModeWindowed,
		linkpred.ModeDynamic,
	} {
		e, err := linkpred.NewEngine(linkpred.EngineSpec{
			Mode:             mode,
			Config:           cfg,
			Shards:           4,
			Window:           1 << 40,
			Gens:             4,
			ExpectedVertices: 60,
		})
		if err != nil {
			t.Fatalf("NewEngine(%s): %v", mode, err)
		}
		engines[mode] = e
	}

	rng := rand.New(rand.NewSource(13))
	edges := make([]linkpred.Edge, 0, 800)
	for i := 0; i < 800; i++ {
		u := uint64(rng.Intn(60) * rng.Intn(60) / 60) // skew toward low ids
		v := uint64(rng.Intn(60))
		if u == v {
			v = (v + 1) % 60
		}
		edges = append(edges, linkpred.Edge{U: u, V: v, T: int64(i)})
	}
	for _, e := range engines {
		e.ObserveEdges(edges)
	}
	return engines
}

// TestFacadeParityTiered re-runs the measure × facade × entry-point
// matrix over mixed-tier stores: with candidates spanning all three
// tiers, ScoreBatch must still equal pointwise Score bit-for-bit and
// TopK must equal the sequential oracle — the batched kernels may not
// cut cross-tier corners the sequential estimators don't.
func TestFacadeParityTiered(t *testing.T) {
	engines := tieredParityEngines(t)

	const src = uint64(1) // hot: promoted to the top tier by the skew
	candidates := make([]uint64, 0, 59)
	for v := uint64(0); v < 60; v++ {
		if v != src {
			candidates = append(candidates, v)
		}
	}

	for mode, e := range engines {
		occ := e.TierOccupancy()
		if len(occ) != 3 {
			t.Fatalf("%s: TierOccupancy = %v, want 3 tiers", mode, occ)
		}
		if occ[0] == 0 || occ[1]+occ[2] == 0 {
			t.Fatalf("%s: stream did not straddle tiers (occupancy %v); parity run is vacuous", mode, occ)
		}
		for _, m := range linkpred.AllMeasures {
			t.Run(mode+"/"+m.String(), func(t *testing.T) {
				batch, err := e.ScoreBatch(m, src, candidates)
				if err != nil {
					t.Fatalf("ScoreBatch: %v", err)
				}
				for i, v := range candidates {
					want, err := e.Score(m, src, v)
					if err != nil {
						t.Fatalf("Score(%d): %v", v, err)
					}
					if batch[i] != want && !(math.IsNaN(batch[i]) && math.IsNaN(want)) {
						t.Fatalf("ScoreBatch[%d] (v=%d) = %v, want Score = %v", i, v, batch[i], want)
					}
				}
				got, err := e.TopK(m, src, candidates, 10)
				if err != nil {
					t.Fatalf("TopK: %v", err)
				}
				want := referenceTopK(src, candidates, batch, 10)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("TopK[%d] = %+v, want %+v", i, got[i], want[i])
					}
				}
			})
		}
	}

	// Cross-mode agreement holds tiered exactly as it does uniform.
	pairs := [][2]string{
		{linkpred.ModeSingle, linkpred.ModeConcurrent},
		{linkpred.ModeDirected, linkpred.ModeConcurrentDirected},
		{linkpred.ModeSingle, linkpred.ModeWindowed},
	}
	for _, pr := range pairs {
		a, b := engines[pr[0]], engines[pr[1]]
		for _, m := range linkpred.AllMeasures {
			for u := uint64(0); u < 30; u++ {
				for v := u + 1; v < 30; v++ {
					sa, _ := a.Score(m, u, v)
					sb, _ := b.Score(m, u, v)
					if sa != sb && !(math.IsNaN(sa) && math.IsNaN(sb)) {
						t.Fatalf("%v(%d,%d): %s=%v, %s=%v", m, u, v, pr[0], sa, pr[1], sb)
					}
				}
			}
		}
	}
}

// TestEngineRegistry exercises NewEngine/ModeOf/DirectedEngine and the
// mode errors.
func TestEngineRegistry(t *testing.T) {
	engines := parityEngines(t)
	for mode, e := range engines {
		if got := linkpred.ModeOf(e); got != mode {
			t.Fatalf("ModeOf = %q, want %q", got, mode)
		}
		wantDir := mode == linkpred.ModeDirected || mode == linkpred.ModeConcurrentDirected
		if got := linkpred.DirectedEngine(e); got != wantDir {
			t.Fatalf("DirectedEngine(%s) = %v, want %v", mode, got, wantDir)
		}
	}
	if _, err := linkpred.NewEngine(linkpred.EngineSpec{Mode: "bogus", Config: linkpred.Config{K: 8}}); err == nil {
		t.Fatal("want error for unknown mode")
	}
	if _, err := linkpred.NewEngine(linkpred.EngineSpec{Mode: linkpred.ModeSingle, Config: linkpred.Config{K: 0}}); err == nil {
		t.Fatal("want error for K=0")
	}
}

// TestLoadAnyEngine saves every mode's engine and restores each through
// the magic-sniffing loader: the restored engine must report the same
// mode and answer every measure identically.
func TestLoadAnyEngine(t *testing.T) {
	engines := parityEngines(t)
	for mode, e := range engines {
		t.Run(mode, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Save(&buf); err != nil {
				t.Fatalf("save: %v", err)
			}
			got, err := linkpred.LoadAnyEngine(&buf)
			if err != nil {
				t.Fatalf("LoadAnyEngine: %v", err)
			}
			if gm := linkpred.ModeOf(got); gm != mode {
				t.Fatalf("restored mode = %q, want %q", gm, mode)
			}
			if got.NumVertices() != e.NumVertices() || got.NumEdges() != e.NumEdges() {
				t.Fatalf("stats: got (%d, %d), want (%d, %d)",
					got.NumVertices(), got.NumEdges(), e.NumVertices(), e.NumEdges())
			}
			if got.Config() != e.Config() {
				t.Fatalf("config: got %+v, want %+v", got.Config(), e.Config())
			}
			for _, m := range linkpred.AllMeasures {
				for u := uint64(0); u < 25; u++ {
					for v := uint64(0); v < 25; v++ {
						want, _ := e.Score(m, u, v)
						have, _ := got.Score(m, u, v)
						if want != have && !(math.IsNaN(want) && math.IsNaN(have)) {
							t.Fatalf("%v(%d,%d): restored %v, want %v", m, u, v, have, want)
						}
					}
				}
			}
		})
	}

	if _, err := linkpred.LoadAnyEngine(bytes.NewReader([]byte("LPS1....gibberish"))); err == nil {
		t.Fatal("want error for stream-file magic")
	}
}

// TestSynchronizedConcurrency hammers a Synchronized-wrapped windowed
// engine (the strictest single-writer store) with a writer goroutine and
// several query goroutines; run under -race this proves the wrapper's
// locking actually covers the whole Engine surface.
func TestSynchronizedConcurrency(t *testing.T) {
	w, err := linkpred.NewWindowed(linkpred.Config{K: 32, Seed: 3}, 10_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := linkpred.Synchronize(w)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3000; i++ {
			e.ObserveEdge(linkpred.Edge{U: uint64(i % 40), V: uint64((i * 7) % 40), T: int64(i)})
			if i%64 == 0 {
				e.ObserveEdges([]linkpred.Edge{
					{U: uint64(i % 13), V: uint64(i % 29), T: int64(i)},
					{U: uint64(i % 17), V: uint64(i % 31), T: int64(i)},
				})
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cands := []uint64{1, 2, 3, 5, 8, 13, 21, 34}
			for i := 0; i < 400; i++ {
				m := linkpred.AllMeasures[(g+i)%len(linkpred.AllMeasures)]
				if _, err := e.Score(m, uint64(i%40), uint64((i+g)%40)); err != nil {
					t.Error(err)
					return
				}
				if _, err := e.ScoreBatch(m, uint64(g), cands); err != nil {
					t.Error(err)
					return
				}
				if _, err := e.TopK(m, uint64(g), cands, 3); err != nil {
					t.Error(err)
					return
				}
				e.Degree(uint64(i % 40))
				e.Seen(uint64(i % 40))
				e.NumVertices()
				e.NumEdges()
				e.MemoryBytes()
				if i%100 == 0 {
					if err := e.Save(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	<-done
	wg.Wait()
}
