package linkpred

import (
	"fmt"
	"io"

	"linkpred/internal/core"
)

// Windowed is a sliding-window streaming link predictor: estimates
// reflect only the most recent window of stream time, so predictions
// track the current graph as it evolves (the temporal-decay extension of
// the sketch scheme; see DESIGN.md §7-extension).
//
// The window of span `window` (in Edge.T units) is covered by `gens`
// tumbling generations; old generations are dropped as time advances, so
// effective coverage varies between window·(gens−1)/gens and window.
// Queries cost O(gens·K). Degrees always use distinct counting (a
// neighbor seen in several generations counts once), so
// Config.DistinctDegrees is implied. Config.EnableBiased is not
// supported.
//
// Edge timestamps must be non-decreasing, which is why Windowed has no
// timestamp-less Observe method: feed it through ObserveEdge (or
// ObserveEdges) with explicit Edge.T values. Rotation is O(gens) worst
// case per edge for any time gap (an idle period, or a jump from T=0 to
// epoch-seconds timestamps, rotates arithmetically instead of one span
// at a time), so per-edge cost stays constant. A late edge still inside
// the window lands in the generation covering its timestamp; an edge
// older than the whole window is folded into the oldest live generation
// rather than dropped. Not safe for concurrent use (wrap in
// Synchronized to serve queries against a live window).
type Windowed struct {
	facade[*core.Windowed]
}

// NewWindowed returns an empty windowed predictor. It returns an error
// if cfg.K < 1, window < 1, gens < 2, window/gens < 1, or
// cfg.EnableBiased is set.
func NewWindowed(cfg Config, window int64, gens int) (*Windowed, error) {
	cc := coreConfig(cfg)
	cc.Degrees = core.DegreeDistinctKMV // windowed degrees are always distinct counts
	cc.TrackTriangles = false           // triangle tracking is whole-stream only
	store, err := core.NewWindowed(cc, window, gens)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &Windowed{facade[*core.Windowed]{store: store, cfg: cfg}}, nil
}

// Window returns the total window span covered.
func (w *Windowed) Window() int64 { return w.store.Window() }

// Rotations returns how many generation resets have occurred, for
// introspection and tests. It grows by at most `gens` per observed edge
// regardless of the time gap between edges.
func (w *Windowed) Rotations() int64 { return w.store.Rotations() }

// LoadWindowed restores a predictor saved with (*Windowed).Save.
func LoadWindowed(r io.Reader) (*Windowed, error) {
	store, err := core.LoadWindowed(r)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	cfg := configFromCore(store.Config())
	cfg.DistinctDegrees = true // windowed mode always uses distinct degrees
	return &Windowed{facade[*core.Windowed]{store: store, cfg: cfg}}, nil
}
