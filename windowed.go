package linkpred

import (
	"fmt"
	"io"

	"linkpred/internal/core"
	"linkpred/internal/hashing"
	"linkpred/internal/stream"
)

// Windowed is a sliding-window streaming link predictor: estimates
// reflect only the most recent window of stream time, so predictions
// track the current graph as it evolves (the temporal-decay extension of
// the sketch scheme; see DESIGN.md §7-extension).
//
// The window of span `window` (in Edge.T units) is covered by `gens`
// tumbling generations; old generations are dropped as time advances, so
// effective coverage varies between window·(gens−1)/gens and window.
// Queries cost O(gens·K). Degrees always use distinct counting (a
// neighbor seen in several generations counts once), so
// Config.DistinctDegrees is implied. Config.EnableBiased is not
// supported.
//
// Edge timestamps must be non-decreasing. Rotation is O(gens) worst
// case per edge for any time gap (an idle period, or a jump from T=0 to
// epoch-seconds timestamps, rotates arithmetically instead of one span
// at a time), so per-edge cost stays constant. A late edge still inside
// the window lands in the generation covering its timestamp; an edge
// older than the whole window is folded into the oldest live generation
// rather than dropped.
type Windowed struct {
	store *core.Windowed
	cfg   Config
}

// NewWindowed returns an empty windowed predictor. It returns an error
// if cfg.K < 1, window < 1, gens < 2, window/gens < 1, or
// cfg.EnableBiased is set.
func NewWindowed(cfg Config, window int64, gens int) (*Windowed, error) {
	kind := hashing.KindMixed
	if cfg.TabulationHashing {
		kind = hashing.KindTabulation
	}
	store, err := core.NewWindowed(core.Config{
		K:            cfg.K,
		Seed:         cfg.Seed,
		Hash:         kind,
		Degrees:      core.DegreeDistinctKMV,
		EnableBiased: cfg.EnableBiased,
	}, window, gens)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	return &Windowed{store: store, cfg: cfg}, nil
}

// Config returns the configuration the predictor was built with.
func (w *Windowed) Config() Config { return w.cfg }

// Window returns the total window span covered.
func (w *Windowed) Window() int64 { return w.store.Window() }

// Rotations returns how many generation resets have occurred, for
// introspection and tests. It grows by at most `gens` per observed edge
// regardless of the time gap between edges.
func (w *Windowed) Rotations() int64 { return w.store.Rotations() }

// ObserveEdge folds a timestamped edge into the window. Timestamps must
// be non-decreasing.
func (w *Windowed) ObserveEdge(e Edge) {
	w.store.ProcessEdge(stream.Edge{U: e.U, V: e.V, T: e.T})
}

// Jaccard returns the estimated Jaccard coefficient over the window.
func (w *Windowed) Jaccard(u, v uint64) float64 { return w.store.EstimateJaccard(u, v) }

// CommonNeighbors returns the estimated common-neighbor count over the
// window.
func (w *Windowed) CommonNeighbors(u, v uint64) float64 {
	return w.store.EstimateCommonNeighbors(u, v)
}

// AdamicAdar returns the estimated Adamic–Adar index over the window.
func (w *Windowed) AdamicAdar(u, v uint64) float64 { return w.store.EstimateAdamicAdar(u, v) }

// ResourceAllocation returns the estimated resource-allocation index
// over the window.
func (w *Windowed) ResourceAllocation(u, v uint64) float64 {
	return w.store.EstimateResourceAllocation(u, v)
}

// PreferentialAttachment returns the degree product d(u)·d(v) under the
// windowed (distinct-count) degree estimates.
func (w *Windowed) PreferentialAttachment(u, v uint64) float64 {
	return w.store.EstimatePreferentialAttachment(u, v)
}

// Cosine returns the estimated cosine (Salton) similarity over the
// window.
func (w *Windowed) Cosine(u, v uint64) float64 { return w.store.EstimateCosine(u, v) }

// Score returns the estimate of the given measure for (u, v) over the
// window. Every library measure is supported.
func (w *Windowed) Score(m Measure, u, v uint64) (float64, error) {
	switch m {
	case Jaccard:
		return w.store.EstimateJaccard(u, v), nil
	case CommonNeighbors:
		return w.store.EstimateCommonNeighbors(u, v), nil
	case AdamicAdar:
		return w.store.EstimateAdamicAdar(u, v), nil
	case ResourceAllocation:
		return w.store.EstimateResourceAllocation(u, v), nil
	case PreferentialAttachment:
		return w.store.EstimatePreferentialAttachment(u, v), nil
	case Cosine:
		return w.store.EstimateCosine(u, v), nil
	default:
		return 0, fmt.Errorf("linkpred: unknown measure %v", m)
	}
}

// ScoreBatch scores every candidate against u over the window in one
// batched pass, returning scores aligned with candidates. The batch path
// merges the source's generations once and precomputes the Adamic–Adar
// midpoint weights once per batch — the per-pair estimators redo both
// for every candidate — and scores chunks on parallel workers. Like the
// per-pair estimators, it must not run concurrently with ObserveEdge.
// Supports the same measures as Score.
func (w *Windowed) ScoreBatch(m Measure, u uint64, candidates []uint64) ([]float64, error) {
	qm, err := queryMeasure(m)
	if err != nil {
		return nil, err
	}
	return w.store.ScoreBatch(qm, u, candidates, nil)
}

// TopK scores every candidate against u over the window and returns the
// k best, ties broken toward smaller vertex ids. Candidates are
// deduplicated (repeated ids contribute one result entry) and u itself
// is skipped. Supports the same measures as Score; must not run
// concurrently with ObserveEdge.
func (w *Windowed) TopK(m Measure, u uint64, candidates []uint64, k int) ([]Candidate, error) {
	qm, err := queryMeasure(m)
	if err != nil {
		return nil, err
	}
	return topKBatch(u, candidates, k, func(dedup []uint64, scores []float64) ([]float64, error) {
		return w.store.ScoreBatch(qm, u, dedup, scores)
	})
}

// Degree returns the estimated distinct degree of u over the window.
func (w *Windowed) Degree(u uint64) float64 { return w.store.Degree(u) }

// Seen reports whether u appears anywhere in the current window.
func (w *Windowed) Seen(u uint64) bool { return w.store.Knows(u) }

// NumEdges returns the number of edges currently held in the window.
func (w *Windowed) NumEdges() int64 { return w.store.NumEdges() }

// MemoryBytes returns the predictor's payload memory.
func (w *Windowed) MemoryBytes() int { return w.store.MemoryBytes() }

// Save writes the windowed predictor's complete state — including the
// window geometry and rotation cursor — to wr, so a restored predictor
// resumes the window exactly where it left off.
func (w *Windowed) Save(wr io.Writer) error {
	if err := w.store.Save(wr); err != nil {
		return fmt.Errorf("linkpred: %w", err)
	}
	return nil
}

// LoadWindowed restores a predictor saved with (*Windowed).Save.
func LoadWindowed(r io.Reader) (*Windowed, error) {
	store, err := core.LoadWindowed(r)
	if err != nil {
		return nil, fmt.Errorf("linkpred: %w", err)
	}
	cc := store.Config()
	return &Windowed{store: store, cfg: Config{
		K:                 cc.K,
		Seed:              cc.Seed,
		TabulationHashing: cc.Hash == hashing.KindTabulation,
		DistinctDegrees:   true, // windowed mode always uses distinct degrees
	}}, nil
}
