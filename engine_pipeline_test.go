package linkpred_test

import (
	"bytes"
	"math/rand"
	"testing"

	linkpred "linkpred"
)

// pipelineTestEdges is a duplicate-heavy stream over a small vertex
// universe — the shape that exercises batch folding and every shard.
func pipelineTestEdges(n int) []linkpred.Edge {
	rng := rand.New(rand.NewSource(23))
	edges := make([]linkpred.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, linkpred.Edge{U: uint64(rng.Intn(80)), V: uint64(rng.Intn(80)), T: int64(i)})
	}
	return edges
}

// TestEnginePipelineDeterminism is the engine-level determinism table:
// for every mode, an engine built with the ingest pipeline forced on
// must Save byte-identically to one with the pipeline disabled after
// ingesting the same stream. Single-writer modes ignore the knob, so
// the rows are trivially identical there; the concurrent rows are the
// real assertion — shard-owner apply is invisible in the persisted
// registers.
func TestEnginePipelineDeterminism(t *testing.T) {
	edges := pipelineTestEdges(4000)
	cfg := linkpred.Config{K: 32, Seed: 9}
	for _, mode := range []string{
		linkpred.ModeSingle,
		linkpred.ModeConcurrent,
		linkpred.ModeDirected,
		linkpred.ModeConcurrentDirected,
		linkpred.ModeWindowed,
		linkpred.ModeDynamic,
	} {
		t.Run(mode, func(t *testing.T) {
			build := func(workers int) linkpred.Engine {
				e, err := linkpred.NewEngine(linkpred.EngineSpec{
					Mode: mode, Config: cfg, Shards: 8,
					Window: 1 << 40, Gens: 4,
					IngestWorkers: workers, IngestRing: 8,
				})
				if err != nil {
					t.Fatalf("NewEngine(%s, workers=%d): %v", mode, workers, err)
				}
				return e
			}
			plain := build(-1)
			piped := build(3)

			pipelined := false
			if pl, ok := linkpred.PipelinerOf(piped); ok {
				_, pipelined = pl.IngestPipelineStats()
			}
			wantPipeline := mode == linkpred.ModeConcurrent || mode == linkpred.ModeConcurrentDirected
			if pipelined != wantPipeline {
				t.Fatalf("pipeline running = %v, want %v for mode %s", pipelined, wantPipeline, mode)
			}

			for lo := 0; lo < len(edges); lo += 256 {
				hi := lo + 256
				if hi > len(edges) {
					hi = len(edges)
				}
				plain.ObserveEdges(edges[lo:hi])
				piped.ObserveEdges(edges[lo:hi])
			}
			var a, b bytes.Buffer
			if err := plain.Save(&a); err != nil {
				t.Fatal(err)
			}
			if err := piped.Save(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("mode %s: pipelined ingest Save differs from pipeline-disabled Save", mode)
			}
		})
	}
}

// TestEngineAsyncIngest covers the root async facade used by batched
// WAL replay: ObserveEdgesAsync + FlushIngest must be byte-equivalent
// to synchronous ObserveEdges, and pipeline teardown must leave the
// engine on the lock-handoff path with consistent gauges.
func TestEngineAsyncIngest(t *testing.T) {
	edges := pipelineTestEdges(3000)
	cfg := linkpred.Config{K: 32, Seed: 11}

	ref, err := linkpred.NewConcurrent(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref.ObserveEdges(edges)

	c, err := linkpred.NewConcurrent(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !c.StartIngestPipeline(2, 0) {
		t.Fatal("StartIngestPipeline refused forced workers")
	}
	eng := linkpred.Engine(c)
	ai, ok := linkpred.AsyncIngesterOf(eng)
	if !ok {
		t.Fatal("AsyncIngesterOf failed on Concurrent")
	}
	for lo := 0; lo < len(edges); lo += 128 {
		hi := lo + 128
		if hi > len(edges) {
			hi = len(edges)
		}
		ai.ObserveEdgesAsync(edges[lo:hi])
	}
	ai.FlushIngest()
	if c.NumEdges() != ref.NumEdges() || c.NumVertices() != ref.NumVertices() {
		t.Fatalf("gauges after flush: (%d,%d), want (%d,%d)",
			c.NumEdges(), c.NumVertices(), ref.NumEdges(), ref.NumVertices())
	}
	c.StopIngestPipeline()
	if _, running := c.IngestPipelineStats(); running {
		t.Fatal("stats still ok after StopIngestPipeline")
	}
	if c.MemoryBytes() != ref.MemoryBytes() {
		t.Fatalf("MemoryBytes after stop = %d, want %d (pipeline footprint must leave the gauge)",
			c.MemoryBytes(), ref.MemoryBytes())
	}
	var a, b bytes.Buffer
	if err := ref.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("async pipeline ingest diverged from synchronous ingest")
	}

	// Single-writer engines expose neither interface, even Synchronized.
	single, err := linkpred.NewEngine(linkpred.EngineSpec{Mode: linkpred.ModeSingle, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := linkpred.PipelinerOf(single); ok {
		t.Fatal("PipelinerOf must fail on the single-writer engine")
	}
	if _, ok := linkpred.AsyncIngesterOf(single); ok {
		t.Fatal("AsyncIngesterOf must fail on the single-writer engine")
	}
}
