package linkpred

import (
	"math"
	"testing"
)

func TestParseMeasureRoundTrip(t *testing.T) {
	for _, m := range AllMeasures {
		got, err := ParseMeasure(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMeasure(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := ParseMeasure("zebra"); err == nil {
		t.Error("unknown measure should error")
	}
	if _, err := ParseMeasure(""); err == nil {
		t.Error("empty measure should error")
	}
}

func TestTopKByScoreNaN(t *testing.T) {
	// NaN scores must rank after every real score, deterministically —
	// not poison the sort's transitivity.
	scores := map[uint64]float64{
		1: math.NaN(),
		2: 0.5,
		3: math.NaN(),
		4: 0.9,
		5: 0,
	}
	out, err := topKByScore(100, []uint64{1, 2, 3, 4, 5}, 5, func(v uint64) (float64, error) {
		return scores[v], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d candidates, want 5", len(out))
	}
	wantOrder := []uint64{4, 2, 5, 1, 3} // real scores descending, then NaNs by id
	for i, want := range wantOrder {
		if out[i].V != want {
			t.Fatalf("rank %d = vertex %d, want %d (full: %v)", i, out[i].V, want, out)
		}
	}
}
