// bench_test.go maps every table and figure of the reconstructed
// evaluation suite (DESIGN.md §6) to a testing.B target, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in quick mode, and
//
//	go run ./cmd/lpbench -exp all
//
// regenerates it at full scale with the tables printed. Micro-benchmarks
// for the per-edge and per-query hot paths follow the experiment
// benches.
package linkpred_test

import (
	"fmt"
	"io"
	"testing"

	linkpred "linkpred"
	"linkpred/internal/baseline"
	"linkpred/internal/bench"
	"linkpred/internal/gen"
	"linkpred/internal/stream"
)

// runExperiment executes one registered experiment b.N times in quick
// mode. The first iteration's table is written to the benchmark log via
// b.Log when -v is set.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.RunConfig{Quick: true, Seed: 42}
	for i := 0; i < b.N; i++ {
		table, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := table.WriteASCII(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE1DatasetStats(b *testing.B)     { runExperiment(b, "e1") }
func BenchmarkE2AccuracyVsK(b *testing.B)      { runExperiment(b, "e2") }
func BenchmarkE3AccuracyDatasets(b *testing.B) { runExperiment(b, "e3") }
func BenchmarkE4RankingQuality(b *testing.B)   { runExperiment(b, "e4") }
func BenchmarkE5TemporalAUC(b *testing.B)      { runExperiment(b, "e5") }
func BenchmarkE6Throughput(b *testing.B)       { runExperiment(b, "e6") }
func BenchmarkE7AAAblation(b *testing.B)       { runExperiment(b, "e7") }
func BenchmarkE8Memory(b *testing.B)           { runExperiment(b, "e8") }
func BenchmarkE9Progression(b *testing.B)      { runExperiment(b, "e9") }
func BenchmarkE10QueryLatency(b *testing.B)    { runExperiment(b, "e10") }
func BenchmarkE20IngestScaling(b *testing.B)   { runExperiment(b, "e20") }

// loadEdges materialises a small BA stream once per benchmark process.
func loadEdges(b *testing.B) []stream.Edge {
	b.Helper()
	src, err := gen.BarabasiAlbert(20_000, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	edges, err := stream.Collect(src)
	if err != nil {
		b.Fatal(err)
	}
	return edges
}

// BenchmarkObserve measures the per-edge ingest cost of the sketch at
// several register counts — the paper's constant-time-per-edge claim.
func BenchmarkObserve(b *testing.B) {
	edges := loadEdges(b)
	for _, k := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			p, err := linkpred.New(linkpred.Config{K: k, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := edges[i%len(edges)]
				p.Observe(e.U, e.V)
			}
		})
	}
}

// BenchmarkObserveBaselines measures the per-edge cost of the comparison
// systems on the same stream.
func BenchmarkObserveBaselines(b *testing.B) {
	edges := loadEdges(b)
	b.Run("exact", func(b *testing.B) {
		sys := baseline.NewExact()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.ProcessEdge(edges[i%len(edges)])
		}
	})
	b.Run("reservoir", func(b *testing.B) {
		sys, err := baseline.NewReservoir(10_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.ProcessEdge(edges[i%len(edges)])
		}
	})
}

// BenchmarkQuery measures per-query latency of each estimator.
func BenchmarkQuery(b *testing.B) {
	edges := loadEdges(b)
	for _, k := range []int{64, 256} {
		p, err := linkpred.New(linkpred.Config{K: k, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range edges {
			p.Observe(e.U, e.V)
		}
		b.Run(fmt.Sprintf("jaccard/k=%d", k), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += p.Jaccard(uint64(i%1000), uint64((i+7)%1000))
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("common-neighbors/k=%d", k), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += p.CommonNeighbors(uint64(i%1000), uint64((i+7)%1000))
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("adamic-adar/k=%d", k), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += p.AdamicAdar(uint64(i%1000), uint64((i+7)%1000))
			}
			_ = sink
		})
	}
}

// BenchmarkTopK measures candidate ranking over a 1000-vertex pool.
func BenchmarkTopK(b *testing.B) {
	edges := loadEdges(b)
	p, err := linkpred.New(linkpred.Config{K: 128, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range edges {
		p.Observe(e.U, e.V)
	}
	candidates := make([]uint64, 1000)
	for i := range candidates {
		candidates[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.TopK(linkpred.AdamicAdar, uint64(i%100), candidates, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11HashAblation(b *testing.B)      { runExperiment(b, "e11") }
func BenchmarkE12DuplicateDegrees(b *testing.B)  { runExperiment(b, "e12") }
func BenchmarkE13WindowDrift(b *testing.B)       { runExperiment(b, "e13") }
func BenchmarkE14ConcurrentScaling(b *testing.B) { runExperiment(b, "e14") }

func BenchmarkE15RecommenderQuality(b *testing.B) { runExperiment(b, "e15") }

func BenchmarkE16DirectedAccuracy(b *testing.B) { runExperiment(b, "e16") }

func BenchmarkE17Triangles(b *testing.B) { runExperiment(b, "e17") }

func BenchmarkE18StreamProfiling(b *testing.B) { runExperiment(b, "e18") }

func BenchmarkE19LSHSimilarity(b *testing.B) { runExperiment(b, "e19") }
